//! Packet formats of the (extended) soNUMA transport.
//!
//! All data packets carry exactly one cache block — source unrolling
//! guarantees it. §5.2 adds two packet types for SABRes: the registration
//! packet and the payload-free validation packet.

use sabre_mem::{Addr, BLOCK_BYTES};

/// A node index within the rack.
pub type NodeId = u8;

/// An RMC backend pipeline index within a node (Fig. 6: replicated across
/// the chip edge).
pub type PipeId = u8;

/// One cache block of payload.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct Block(pub [u8; BLOCK_BYTES]);

impl Block {
    /// An all-zero block.
    pub const ZERO: Block = Block([0; BLOCK_BYTES]);
}

impl std::fmt::Debug for Block {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Print only a prefix; full 64-byte dumps drown test output.
        write!(
            f,
            "Block({:02x}{:02x}{:02x}{:02x}…)",
            self.0[0], self.0[1], self.0[2], self.0[3]
        )
    }
}

impl Default for Block {
    fn default() -> Self {
        Block::ZERO
    }
}

impl From<[u8; BLOCK_BYTES]> for Block {
    fn from(b: [u8; BLOCK_BYTES]) -> Self {
        Block(b)
    }
}

/// The payload-relevant content of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// One-sided read request for a single cache block.
    ReadReq {
        /// Remote (destination-local) address of the block.
        addr: Addr,
        /// Source transfer this block belongs to.
        transfer: u32,
        /// Block index within the transfer.
        block_index: u32,
    },
    /// Reply carrying one block of data.
    ReadReply {
        /// Transfer the reply belongs to.
        transfer: u32,
        /// Block index within the transfer.
        block_index: u32,
        /// The data.
        data: Block,
    },
    /// One-sided write request carrying one block.
    WriteReq {
        /// Remote address of the block.
        addr: Addr,
        /// Source transfer.
        transfer: u32,
        /// Block index within the transfer.
        block_index: u32,
        /// The data to write.
        data: Block,
    },
    /// Acknowledgment of one written block.
    WriteAck {
        /// Transfer the ack belongs to.
        transfer: u32,
        /// Block index within the transfer.
        block_index: u32,
    },
    /// SABRe registration (§5.2): precedes the data requests and carries
    /// the SABRe's geometry so the destination R2P2 can allocate an ATT
    /// entry.
    SabreReg {
        /// Source transfer id.
        transfer: u32,
        /// Object base address at the destination.
        base: Addr,
        /// Total SABRe size in bytes.
        size_bytes: u32,
        /// Offset of the version word within the first block.
        version_offset: u32,
    },
    /// One data request of a registered SABRe.
    SabreReadReq {
        /// Source transfer id.
        transfer: u32,
        /// Block index within the SABRe.
        block_index: u32,
    },
    /// Reply carrying one block of SABRe data.
    SabreReply {
        /// Source transfer id.
        transfer: u32,
        /// Block index within the SABRe.
        block_index: u32,
        /// The data.
        data: Block,
    },
    /// The final, payload-free packet of every SABRe (§5.2), reporting
    /// atomicity success or failure.
    SabreValidation {
        /// Source transfer id.
        transfer: u32,
        /// Whether the read was atomic.
        atomic: bool,
    },
    /// Remote compare-and-swap acquiring an object's write lock: flips the
    /// version word from even (free) to odd (held). The cache-block-sized
    /// atomic the paper notes RDMA offers (§2) and DrTM-style source
    /// locking builds on.
    CasReq {
        /// Remote address of the version/lock word.
        addr: Addr,
        /// Source transfer id.
        transfer: u32,
    },
    /// Outcome of a [`PacketKind::CasReq`].
    CasReply {
        /// Source transfer id.
        transfer: u32,
        /// Whether the lock was acquired.
        acquired: bool,
    },
    /// Remote unlock: advances the odd version word to the next even value.
    UnlockReq {
        /// Remote address of the version/lock word.
        addr: Addr,
        /// Source transfer id.
        transfer: u32,
    },
    /// Acknowledgment of an [`PacketKind::UnlockReq`].
    UnlockAck {
        /// Source transfer id.
        transfer: u32,
    },
    /// Wait-free register read request: the destination R2P2 captures the
    /// published version slot server-side and streams it back as
    /// [`PacketKind::ReadReply`]s — one round trip, no client retry.
    WfReadReq {
        /// Source transfer id.
        transfer: u32,
        /// Object base address at the destination.
        base: Addr,
        /// Total wire bytes (header block + one slot).
        size_bytes: u32,
    },
    /// Oh-RAM read request: the destination R2P2 captures a consistent
    /// snapshot of the object under server-side OCC and streams it back as
    /// [`PacketKind::ReadReply`]s; the reader then relays a confirm write.
    OhReadReq {
        /// Source transfer id.
        transfer: u32,
        /// Object base address at the destination.
        base: Addr,
        /// Total wire bytes.
        size_bytes: u32,
    },
    /// Catch-up pull request: a recovering replica asks a live peer for
    /// its whole write-log region. The destination R2P2 streams the region
    /// back as a burst of [`PacketKind::CatchUpReply`]s, one per block —
    /// recovery traffic pays hops and uplink queueing like any transfer.
    CatchUpReq {
        /// Source transfer id.
        transfer: u32,
        /// Write-log region base address at the destination.
        base: Addr,
        /// Region size in bytes (a whole number of blocks).
        size_bytes: u32,
    },
    /// One block of a peer's write-log region, answering a
    /// [`PacketKind::CatchUpReq`].
    CatchUpReply {
        /// Source transfer id.
        transfer: u32,
        /// Block index within the pulled region.
        block_index: u32,
        /// The data.
        data: Block,
    },
    /// The destination refused a read because the replica is catching up
    /// after an outage and its data may be stale (the epoch/seq guard).
    /// Completes the transfer unsuccessfully; the reader retries at
    /// another replica.
    ReadRefused {
        /// Source transfer id.
        transfer: u32,
    },
    /// An RPC request (FaRM sends writes to the data owner over RPCs). The
    /// payload is opaque to the transport.
    RpcReq {
        /// Caller-assigned request tag.
        tag: u64,
        /// Payload size in bytes (for wire accounting).
        bytes: u32,
    },
    /// An RPC response.
    RpcReply {
        /// Tag of the request being answered.
        tag: u64,
        /// Payload size in bytes.
        bytes: u32,
    },
}

impl PacketKind {
    /// Payload bytes this packet adds on the wire (the fabric model adds a
    /// fixed per-packet header on top).
    pub fn payload_bytes(&self) -> u64 {
        match self {
            PacketKind::ReadReq { .. } | PacketKind::SabreReadReq { .. } => 8,
            PacketKind::ReadReply { .. }
            | PacketKind::SabreReply { .. }
            | PacketKind::CatchUpReply { .. }
            | PacketKind::WriteReq { .. } => BLOCK_BYTES as u64,
            PacketKind::WriteAck { .. } => 4,
            PacketKind::CasReq { .. } => 16,
            PacketKind::CasReply { .. }
            | PacketKind::UnlockAck { .. }
            | PacketKind::ReadRefused { .. } => 4,
            PacketKind::UnlockReq { .. } => 8,
            PacketKind::SabreReg { .. } => 16,
            PacketKind::WfReadReq { .. }
            | PacketKind::OhReadReq { .. }
            | PacketKind::CatchUpReq { .. } => 16,
            PacketKind::SabreValidation { .. } => 4,
            PacketKind::RpcReq { bytes, .. } | PacketKind::RpcReply { bytes, .. } => *bytes as u64,
        }
    }
}

/// A routed packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Packet {
    /// Originating node.
    pub src_node: NodeId,
    /// Originating RMC backend (replies return to its paired RCP).
    pub src_pipe: PipeId,
    /// Destination node.
    pub dst_node: NodeId,
    /// Destination pipeline (R2P2 for requests, RCP for replies).
    pub dst_pipe: PipeId,
    /// Content.
    pub kind: PacketKind,
}

impl Packet {
    /// The reply skeleton for a request packet: swaps the endpoints so the
    /// reply returns to the requester's paired completion pipeline.
    pub fn reply_to(&self, kind: PacketKind) -> Packet {
        Packet {
            src_node: self.dst_node,
            src_pipe: self.dst_pipe,
            dst_node: self.src_node,
            dst_pipe: self.src_pipe,
            kind,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn payload_sizes() {
        let req = PacketKind::ReadReq {
            addr: Addr::new(0),
            transfer: 1,
            block_index: 0,
        };
        assert_eq!(req.payload_bytes(), 8);
        let rep = PacketKind::ReadReply {
            transfer: 1,
            block_index: 0,
            data: Block::ZERO,
        };
        assert_eq!(rep.payload_bytes(), 64);
        assert_eq!(
            PacketKind::SabreValidation {
                transfer: 1,
                atomic: true
            }
            .payload_bytes(),
            4
        );
        assert_eq!(
            PacketKind::RpcReq { tag: 0, bytes: 300 }.payload_bytes(),
            300
        );
    }

    #[test]
    fn reply_routing_swaps_endpoints() {
        let req = Packet {
            src_node: 0,
            src_pipe: 2,
            dst_node: 1,
            dst_pipe: 3,
            kind: PacketKind::SabreReadReq {
                transfer: 7,
                block_index: 0,
            },
        };
        let rep = req.reply_to(PacketKind::SabreValidation {
            transfer: 7,
            atomic: true,
        });
        assert_eq!(rep.src_node, 1);
        assert_eq!(rep.src_pipe, 3);
        assert_eq!(rep.dst_node, 0);
        assert_eq!(rep.dst_pipe, 2);
    }

    #[test]
    fn block_debug_is_compact() {
        let b = Block([0xAB; BLOCK_BYTES]);
        assert_eq!(format!("{b:?}"), "Block(abababab…)");
    }
}
