//! The destination-side Remote Request Processing Pipeline, upgraded to an
//! R2P2 (§4.2): stateless service for plain reads and writes, plus the
//! [`LightSabres`] engine for SABRes, with parking for registrations that
//! arrive while the ATT is full.
//!
//! Like the engine it embeds, the R2P2 is sans-IO: packets go in, actions
//! come out. The assembly layer owns pacing — it pulls memory operations
//! one at a time through [`R2p2::next_issue`] at the pipeline's issue
//! bandwidth and performs them against the node's memory system.

use std::collections::{HashMap, VecDeque};

use sabre_core::{
    Action, IssueKind, LightSabres, LightSabresConfig, RegisterError, SabreError, SabreId, SlotId,
};
use sabre_mem::{Addr, BlockAddr, BlockRange};
use sabre_sw::{CaptureKind, CaptureStep, ObjectCapture};

use crate::wire::{Block, NodeId, Packet, PacketKind, PipeId};

pub use sabre_core::engine::IssueKind as EngineIssueKind;

/// Opaque tag pairing a memory access with its completion.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MemToken(pub u64);

/// Why a memory read was issued (exposed for tests and tracing).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReadKind {
    /// A plain one-sided read request.
    Plain,
    /// A SABRe data block.
    SabreData,
    /// A SABRe header re-read (OCC revalidation).
    SabreValidate,
    /// A block of a server-side object capture (WfRegister / Oh-RAM).
    Capture,
    /// A block of a write-log region pulled by a recovering peer.
    CatchUp,
}

/// An action the assembly layer must perform for the R2P2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum R2p2Action {
    /// Read `block` from local memory; call [`R2p2::on_mem_reply`] with the
    /// data when it completes.
    MemRead {
        /// Completion tag.
        token: MemToken,
        /// The block to read.
        block: BlockAddr,
        /// Why (tracing only; handling is identical).
        kind: ReadKind,
    },
    /// Write `data` to `block` (one-sided write); call
    /// [`R2p2::on_mem_write_done`] when it completes. The write must raise
    /// coherence invalidations like any store.
    MemWrite {
        /// Completion tag.
        token: MemToken,
        /// The block to write.
        block: BlockAddr,
        /// The data.
        data: Block,
    },
    /// Atomically try-acquire the shared reader lock at `version_addr`
    /// (locking mode); call [`R2p2::on_lock_reply`] with the outcome.
    LockRmw {
        /// Completion tag.
        token: MemToken,
        /// Address of the version/lock word.
        version_addr: Addr,
    },
    /// Release one shared reader hold (fire-and-forget).
    LockRelease {
        /// Address of the version/lock word.
        version_addr: Addr,
    },
    /// Atomically CAS the version word at `version_addr` from even to odd
    /// (remote write-lock acquire); call [`R2p2::on_cas_done`].
    WriterCas {
        /// Completion tag.
        token: MemToken,
        /// Address of the version/lock word.
        version_addr: Addr,
    },
    /// Advance the odd version word at `version_addr` to even (remote
    /// unlock); call [`R2p2::on_unlock_done`].
    WriterUnlock {
        /// Completion tag.
        token: MemToken,
        /// Address of the version/lock word.
        version_addr: Addr,
    },
    /// Transmit a packet on the fabric.
    Send(Packet),
}

#[derive(Debug, Clone, Copy)]
enum Pending {
    CasApply {
        reply_node: NodeId,
        reply_pipe: PipeId,
        transfer: u32,
    },
    UnlockApply {
        reply_node: NodeId,
        reply_pipe: PipeId,
        transfer: u32,
    },
    PlainRead {
        reply_node: NodeId,
        reply_pipe: PipeId,
        transfer: u32,
        block_index: u32,
    },
    WriteApply {
        reply_node: NodeId,
        reply_pipe: PipeId,
        transfer: u32,
        block_index: u32,
    },
    SabreData {
        slot: SlotId,
        block_index: u32,
    },
    SabreValidate {
        slot: SlotId,
    },
    SabreLock {
        slot: SlotId,
    },
    CaptureRead {
        capture: u64,
        block: BlockAddr,
    },
    CatchUpRead {
        reply_node: NodeId,
        reply_pipe: PipeId,
        transfer: u32,
        block_index: u32,
    },
}

#[derive(Debug, Clone, Copy)]
struct Route {
    node: NodeId,
    pipe: PipeId,
    transfer: u32,
}

/// A live server-side object capture and where its image streams back to.
#[derive(Debug)]
struct CaptureCtx {
    capture: ObjectCapture,
    route: Route,
}

#[derive(Debug, Clone, Copy)]
struct ParkedSabre {
    id: SabreId,
    base: Addr,
    size_bytes: u32,
    version_offset: u32,
    /// Data requests that arrived while parked, to be replayed.
    requests: u32,
}

/// R2P2 statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct R2p2Stats {
    /// Plain read requests serviced.
    pub plain_reads: u64,
    /// One-sided write blocks applied.
    pub writes: u64,
    /// SABRes accepted into the ATT.
    pub sabres_registered: u64,
    /// Registrations parked because the ATT was full.
    pub sabres_parked: u64,
    /// Stale data requests discarded in fault-tolerant mode: their
    /// registration died with a crash, so there is no SABRe to serve.
    pub stale_dropped: u64,
    /// Captured reads (WfRegister / Oh-RAM requests) serviced.
    pub captured_reads: u64,
    /// Times a capture restarted because a writer raced the snapshot —
    /// server-side memory re-reads, invisible to the reader.
    pub capture_restarts: u64,
    /// Catch-up pull requests served for recovering peers (each streams a
    /// whole write-log region back as a block burst).
    pub catch_up_pulls: u64,
    /// Reads refused by the epoch/seq guard while this node's replica was
    /// catching up after an outage.
    pub reads_refused: u64,
    /// Reads served *despite* the replica catching up, in serve-stale
    /// mode — each may have returned pre-outage data.
    pub stale_served: u64,
    /// Catch-up pulls refused because this node's own replica was still
    /// catching up — its log head is stale and a peer converging against
    /// it would stop short. The puller retries at its next peer.
    pub catch_up_refused: u64,
}

impl R2p2Stats {
    /// Accumulates another pipeline's counters into this one (aggregation
    /// across pipelines).
    pub fn merge(&mut self, other: &R2p2Stats) {
        self.plain_reads += other.plain_reads;
        self.writes += other.writes;
        self.sabres_registered += other.sabres_registered;
        self.sabres_parked += other.sabres_parked;
        self.stale_dropped += other.stale_dropped;
        self.captured_reads += other.captured_reads;
        self.capture_restarts += other.capture_restarts;
        self.catch_up_pulls += other.catch_up_pulls;
        self.reads_refused += other.reads_refused;
        self.stale_served += other.stale_served;
        self.catch_up_refused += other.catch_up_refused;
    }
}

/// One Remote Request Processing Pipeline.
#[derive(Debug)]
pub struct R2p2 {
    node: NodeId,
    pipe: PipeId,
    engine: LightSabres,
    next_token: u64,
    pending: HashMap<u64, Pending>,
    /// Plain-service work awaiting an issue slot (FIFO).
    ready: VecDeque<R2p2Action>,
    /// SABRes waiting for a free ATT entry (in arrival order).
    parked: VecDeque<ParkedSabre>,
    /// Live object captures (WfRegister / Oh-RAM), keyed by capture id.
    captures: HashMap<u64, CaptureCtx>,
    next_capture: u64,
    routes: HashMap<u8, Route>,
    stats: R2p2Stats,
    /// Discard (rather than panic on) data requests whose registration is
    /// neither live nor parked. Off by default: in a fault-free rack such
    /// a request is a wiring bug. A rack with a fault plan turns it on,
    /// because a crash can swallow the registration packet of a burst
    /// whose data requests outlive the outage.
    tolerate_stale: bool,
    /// How many of this node's recovering workloads are still replaying
    /// missed writes (a counter: several writers may catch up at once,
    /// finishing at different times). While non-zero the replica's data
    /// may be stale, and the epoch/seq guard refuses new reads — or, in
    /// serve-stale mode, serves them counted as [`R2p2Stats::stale_served`].
    catching_up: u32,
    /// Serve reads while catching up instead of refusing them.
    serve_stale: bool,
}

impl R2p2 {
    /// Creates an R2P2 for pipeline `pipe` of node `node` with the given
    /// LightSABRes configuration.
    pub fn new(node: NodeId, pipe: PipeId, cfg: LightSabresConfig) -> Self {
        R2p2 {
            node,
            pipe,
            engine: LightSabres::new(cfg),
            next_token: 0,
            pending: HashMap::new(),
            ready: VecDeque::new(),
            parked: VecDeque::new(),
            captures: HashMap::new(),
            next_capture: 0,
            routes: HashMap::new(),
            stats: R2p2Stats::default(),
            tolerate_stale: false,
            catching_up: 0,
            serve_stale: false,
        }
    }

    /// Makes the pipeline discard stale SABRe data requests (counted in
    /// [`R2p2Stats::stale_dropped`]) instead of panicking — the recovery
    /// semantics of a crash-prone rack, where an outage can eat a
    /// registration whose data requests arrive after service resumes.
    pub fn tolerating_stale(mut self) -> Self {
        self.tolerate_stale = true;
        self
    }

    /// Makes the pipeline serve reads while the replica is catching up
    /// (counted in [`R2p2Stats::stale_served`]) instead of refusing them —
    /// availability over freshness.
    pub fn serving_stale(mut self) -> Self {
        self.serve_stale = true;
        self
    }

    /// Raises or lowers the catching-up counter: a recovering workload on
    /// this node calls with `true` when it starts replaying missed writes
    /// and `false` once converged. Reads are guarded while the counter is
    /// non-zero.
    ///
    /// # Panics
    ///
    /// Panics on underflow (a `false` without a matching `true`).
    pub fn set_catching_up(&mut self, on: bool) {
        if on {
            self.catching_up += 1;
        } else {
            self.catching_up = self
                .catching_up
                .checked_sub(1)
                .expect("catch-up counter underflow");
        }
    }

    /// Whether the replica on this node is still catching up.
    pub fn is_catching_up(&self) -> bool {
        self.catching_up > 0
    }

    /// The embedded LightSABRes engine (stats and tests).
    pub fn engine(&self) -> &LightSabres {
        &self.engine
    }

    /// R2P2-level statistics.
    pub fn stats(&self) -> R2p2Stats {
        self.stats
    }

    /// Zeroes this pipeline's counters and its engine's. In-flight work is
    /// untouched — this only restarts *measurement*, e.g. at the end of a
    /// warmup window.
    pub fn reset_stats(&mut self) {
        self.stats = R2p2Stats::default();
        self.engine.reset_stats();
    }

    /// Whether any work is waiting for an issue slot.
    pub fn has_issuable(&self) -> bool {
        // `next_issue` on the engine is destructive; this conservative probe
        // (plain work queued, or any active SABRe) lets the pump decide
        // whether to keep itself scheduled.
        !self.ready.is_empty() || self.engine.active_count() > 0
    }

    fn token(&mut self, p: Pending) -> MemToken {
        let t = self.next_token;
        self.next_token += 1;
        self.pending.insert(t, p);
        MemToken(t)
    }

    /// Consumes one inbound request packet. Returns `true` if new issuable
    /// work may exist (the pump should be (re)scheduled).
    ///
    /// # Panics
    ///
    /// Panics on reply packets (mis-routed) or malformed SABRe protocol
    /// sequences — simulator bugs, not recoverable conditions.
    pub fn on_packet(&mut self, pkt: &Packet) -> bool {
        // The epoch/seq guard: while this node's replica is catching up,
        // its data may predate the outage. New reads are refused (the
        // reader retries at the next replica) unless serve-stale mode
        // trades freshness for availability. In-flight SABRe data requests
        // are exempt: their registration was admitted before the guard
        // flipped. Catch-up pulls are refused *regardless* of serve-stale
        // — a correlated outage restores sibling sites together, and an
        // equally-stale log head would let the puller falsely converge;
        // the refusal bounces it to its next-nearest (live) peer.
        if self.catching_up > 0 {
            if let PacketKind::CatchUpReq { transfer, .. } = pkt.kind {
                self.stats.catch_up_refused += 1;
                self.ready.push_back(R2p2Action::Send(
                    pkt.reply_to(PacketKind::ReadRefused { transfer }),
                ));
                return true;
            }
            let transfer = match pkt.kind {
                PacketKind::ReadReq { transfer, .. }
                | PacketKind::SabreReg { transfer, .. }
                | PacketKind::WfReadReq { transfer, .. }
                | PacketKind::OhReadReq { transfer, .. } => Some(transfer),
                _ => None,
            };
            if let Some(transfer) = transfer {
                if self.serve_stale {
                    self.stats.stale_served += 1;
                } else {
                    self.stats.reads_refused += 1;
                    self.ready.push_back(R2p2Action::Send(
                        pkt.reply_to(PacketKind::ReadRefused { transfer }),
                    ));
                    return true;
                }
            }
        }
        match pkt.kind {
            PacketKind::ReadReq {
                addr,
                transfer,
                block_index,
            } => {
                self.stats.plain_reads += 1;
                let token = self.token(Pending::PlainRead {
                    reply_node: pkt.src_node,
                    reply_pipe: pkt.src_pipe,
                    transfer,
                    block_index,
                });
                self.ready.push_back(R2p2Action::MemRead {
                    token,
                    block: addr.block(),
                    kind: ReadKind::Plain,
                });
                true
            }
            PacketKind::WriteReq {
                addr,
                transfer,
                block_index,
                data,
            } => {
                self.stats.writes += 1;
                let token = self.token(Pending::WriteApply {
                    reply_node: pkt.src_node,
                    reply_pipe: pkt.src_pipe,
                    transfer,
                    block_index,
                });
                self.ready.push_back(R2p2Action::MemWrite {
                    token,
                    block: addr.block(),
                    data,
                });
                true
            }
            PacketKind::CasReq { addr, transfer } => {
                let token = self.token(Pending::CasApply {
                    reply_node: pkt.src_node,
                    reply_pipe: pkt.src_pipe,
                    transfer,
                });
                self.ready.push_back(R2p2Action::WriterCas {
                    token,
                    version_addr: addr,
                });
                true
            }
            PacketKind::UnlockReq { addr, transfer } => {
                let token = self.token(Pending::UnlockApply {
                    reply_node: pkt.src_node,
                    reply_pipe: pkt.src_pipe,
                    transfer,
                });
                self.ready.push_back(R2p2Action::WriterUnlock {
                    token,
                    version_addr: addr,
                });
                true
            }
            PacketKind::WfReadReq {
                transfer,
                base,
                size_bytes,
            } => {
                self.start_capture(CaptureKind::WfRegister, pkt, transfer, base, size_bytes);
                true
            }
            PacketKind::OhReadReq {
                transfer,
                base,
                size_bytes,
            } => {
                self.start_capture(CaptureKind::OhRam, pkt, transfer, base, size_bytes);
                true
            }
            PacketKind::SabreReg {
                transfer,
                base,
                size_bytes,
                version_offset,
            } => {
                let id = SabreId {
                    src_node: pkt.src_node,
                    src_pipe: pkt.src_pipe,
                    transfer,
                };
                self.register_or_park(id, base, size_bytes, version_offset);
                true
            }
            PacketKind::CatchUpReq {
                transfer,
                base,
                size_bytes,
            } => {
                // Stream the peer's write-log region back, one block per
                // reply. Blocks are issued in address order, header block
                // first — the puller relies on the log head being read no
                // later than any record it then applies.
                self.stats.catch_up_pulls += 1;
                for (i, block) in BlockRange::covering(base, size_bytes as u64)
                    .iter()
                    .enumerate()
                {
                    let token = self.token(Pending::CatchUpRead {
                        reply_node: pkt.src_node,
                        reply_pipe: pkt.src_pipe,
                        transfer,
                        block_index: i as u32,
                    });
                    self.ready.push_back(R2p2Action::MemRead {
                        token,
                        block,
                        kind: ReadKind::CatchUp,
                    });
                }
                true
            }
            PacketKind::SabreReadReq { transfer, .. } => {
                let id = SabreId {
                    src_node: pkt.src_node,
                    src_pipe: pkt.src_pipe,
                    transfer,
                };
                match self.engine.on_data_request(id) {
                    Ok(()) => {}
                    Err(SabreError::UnknownId) => {
                        // The registration is parked; count the request for
                        // replay (in-order fabric guarantees reg-first).
                        if let Some(parked) = self.parked.iter_mut().find(|p| p.id == id) {
                            parked.requests += 1;
                        } else if self.tolerate_stale {
                            // The registration died in an outage; the SABRe
                            // can never be served. Stale traffic, not a bug.
                            self.stats.stale_dropped += 1;
                            return false;
                        } else {
                            panic!("data request for unregistered, unparked SABRe {id}");
                        }
                    }
                    Err(e) => panic!("SABRe protocol violation for {id}: {e}"),
                }
                true
            }
            _ => panic!("R2P2 received a reply-side packet: {pkt:?}"),
        }
    }

    /// Starts a server-side object capture for a WfRegister / Oh-RAM read
    /// and queues its first memory reads.
    fn start_capture(
        &mut self,
        kind: CaptureKind,
        pkt: &Packet,
        transfer: u32,
        base: Addr,
        size_bytes: u32,
    ) {
        self.stats.captured_reads += 1;
        let id = self.next_capture;
        self.next_capture += 1;
        let (capture, step) = ObjectCapture::new(kind, base, size_bytes);
        self.captures.insert(
            id,
            CaptureCtx {
                capture,
                route: Route {
                    node: pkt.src_node,
                    pipe: pkt.src_pipe,
                    transfer,
                },
            },
        );
        self.queue_capture_step(id, step);
    }

    /// Queues the memory reads a capture step asks for (delivery steps are
    /// handled where they arise, in [`R2p2::on_mem_reply`]).
    fn queue_capture_step(&mut self, id: u64, step: CaptureStep) {
        let CaptureStep::Read(blocks) = step else {
            unreachable!("delivery steps are converted to replies inline");
        };
        for block in blocks {
            let token = self.token(Pending::CaptureRead { capture: id, block });
            self.ready.push_back(R2p2Action::MemRead {
                token,
                block,
                kind: ReadKind::Capture,
            });
        }
    }

    fn register_or_park(&mut self, id: SabreId, base: Addr, size_bytes: u32, version_offset: u32) {
        match self.engine.register(id, base, size_bytes, version_offset) {
            Ok(slot) => {
                self.stats.sabres_registered += 1;
                self.routes.insert(
                    slot.0,
                    Route {
                        node: id.src_node,
                        pipe: id.src_pipe,
                        transfer: id.transfer,
                    },
                );
            }
            Err(RegisterError::Full) => {
                self.stats.sabres_parked += 1;
                self.parked.push_back(ParkedSabre {
                    id,
                    base,
                    size_bytes,
                    version_offset,
                    requests: 0,
                });
            }
            Err(e) => panic!("malformed SABRe registration {id}: {e}"),
        }
    }

    fn try_unpark(&mut self) {
        while !self.engine.is_full() {
            let Some(parked) = self.parked.pop_front() else {
                return;
            };
            self.register_or_park(
                parked.id,
                parked.base,
                parked.size_bytes,
                parked.version_offset,
            );
            for _ in 0..parked.requests {
                self.engine
                    .on_data_request(parked.id)
                    .expect("replaying parked requests");
            }
        }
    }

    /// Pulls the next memory operation to issue, if any: queued plain
    /// service first (FIFO arrival order), then the engine's round-robin
    /// pick. The caller paces calls at the R2P2's issue bandwidth.
    pub fn next_issue(&mut self) -> Option<R2p2Action> {
        if let Some(a) = self.ready.pop_front() {
            return Some(a);
        }
        let issue = self.engine.next_issue()?;
        Some(match issue.kind {
            IssueKind::Data => {
                let token = self.token(Pending::SabreData {
                    slot: issue.slot,
                    block_index: issue.block_index,
                });
                R2p2Action::MemRead {
                    token,
                    block: issue.block,
                    kind: ReadKind::SabreData,
                }
            }
            IssueKind::Validate => {
                let token = self.token(Pending::SabreValidate { slot: issue.slot });
                R2p2Action::MemRead {
                    token,
                    block: issue.block,
                    kind: ReadKind::SabreValidate,
                }
            }
            IssueKind::LockAcquire => {
                let entry = self
                    .engine
                    .entry(issue.slot)
                    .expect("lock acquire for live slot");
                let version_addr = entry.version_addr();
                let token = self.token(Pending::SabreLock { slot: issue.slot });
                R2p2Action::LockRmw {
                    token,
                    version_addr,
                }
            }
            IssueKind::LockRelease => {
                // Pulling the release frees the slot; parked SABRes can run.
                let version_addr = issue.block.first_byte();
                self.try_unpark();
                R2p2Action::LockRelease { version_addr }
            }
        })
    }

    /// Completes a memory read issued earlier.
    ///
    /// # Panics
    ///
    /// Panics on unknown tokens (wiring bug).
    pub fn on_mem_reply(&mut self, token: MemToken, data: Block) -> Vec<R2p2Action> {
        let pending = self
            .pending
            .remove(&token.0)
            .unwrap_or_else(|| panic!("unknown memory token {token:?}"));
        match pending {
            Pending::PlainRead {
                reply_node,
                reply_pipe,
                transfer,
                block_index,
            } => vec![R2p2Action::Send(Packet {
                src_node: self.node,
                src_pipe: self.pipe,
                dst_node: reply_node,
                dst_pipe: reply_pipe,
                kind: PacketKind::ReadReply {
                    transfer,
                    block_index,
                    data,
                },
            })],
            Pending::CatchUpRead {
                reply_node,
                reply_pipe,
                transfer,
                block_index,
            } => vec![R2p2Action::Send(Packet {
                src_node: self.node,
                src_pipe: self.pipe,
                dst_node: reply_node,
                dst_pipe: reply_pipe,
                kind: PacketKind::CatchUpReply {
                    transfer,
                    block_index,
                    data,
                },
            })],
            Pending::SabreData { slot, block_index } => {
                let route = self.routes[&slot.0];
                let mut out = vec![R2p2Action::Send(Packet {
                    src_node: self.node,
                    src_pipe: self.pipe,
                    dst_node: route.node,
                    dst_pipe: route.pipe,
                    kind: PacketKind::SabreReply {
                        transfer: route.transfer,
                        block_index,
                        data,
                    },
                })];
                let actions = self.engine.on_block_reply(slot, block_index, &data.0);
                self.extend_with_completions(&mut out, actions);
                out
            }
            Pending::SabreValidate { slot } => {
                let mut out = Vec::new();
                let actions = self.engine.on_validate_reply(slot, &data.0);
                self.extend_with_completions(&mut out, actions);
                out
            }
            Pending::CaptureRead { capture, block } => {
                let ctx = self
                    .captures
                    .get_mut(&capture)
                    .unwrap_or_else(|| panic!("reply for dead capture {capture}"));
                match ctx.capture.on_block(block, data.0) {
                    CaptureStep::Read(blocks) => {
                        // More to collect (or a restart). The pump is
                        // rescheduled by the caller after every reply, so
                        // queueing suffices.
                        self.queue_capture_step(capture, CaptureStep::Read(blocks));
                        vec![]
                    }
                    CaptureStep::Deliver(image) => {
                        let ctx = self.captures.remove(&capture).expect("live capture");
                        self.stats.capture_restarts += ctx.capture.restarts();
                        image
                            .into_iter()
                            .enumerate()
                            .map(|(i, b)| {
                                R2p2Action::Send(Packet {
                                    src_node: self.node,
                                    src_pipe: self.pipe,
                                    dst_node: ctx.route.node,
                                    dst_pipe: ctx.route.pipe,
                                    kind: PacketKind::ReadReply {
                                        transfer: ctx.route.transfer,
                                        block_index: i as u32,
                                        data: Block(b),
                                    },
                                })
                            })
                            .collect()
                    }
                }
            }
            Pending::WriteApply { .. } => panic!("write token completed as a read"),
            Pending::SabreLock { .. } => panic!("lock token completed as a read"),
            Pending::CasApply { .. } | Pending::UnlockApply { .. } => {
                panic!("CAS/unlock token completed as a read")
            }
        }
    }

    /// Completes a remote write-lock CAS.
    ///
    /// # Panics
    ///
    /// Panics on unknown tokens.
    pub fn on_cas_done(&mut self, token: MemToken, acquired: bool) -> Vec<R2p2Action> {
        match self.pending.remove(&token.0) {
            Some(Pending::CasApply {
                reply_node,
                reply_pipe,
                transfer,
            }) => vec![R2p2Action::Send(Packet {
                src_node: self.node,
                src_pipe: self.pipe,
                dst_node: reply_node,
                dst_pipe: reply_pipe,
                kind: PacketKind::CasReply { transfer, acquired },
            })],
            other => panic!("CAS completion for non-CAS token: {other:?}"),
        }
    }

    /// Completes a remote unlock.
    ///
    /// # Panics
    ///
    /// Panics on unknown tokens.
    pub fn on_unlock_done(&mut self, token: MemToken) -> Vec<R2p2Action> {
        match self.pending.remove(&token.0) {
            Some(Pending::UnlockApply {
                reply_node,
                reply_pipe,
                transfer,
            }) => vec![R2p2Action::Send(Packet {
                src_node: self.node,
                src_pipe: self.pipe,
                dst_node: reply_node,
                dst_pipe: reply_pipe,
                kind: PacketKind::UnlockAck { transfer },
            })],
            other => panic!("unlock completion for non-unlock token: {other:?}"),
        }
    }

    /// Completes a one-sided write.
    ///
    /// # Panics
    ///
    /// Panics on unknown tokens.
    pub fn on_mem_write_done(&mut self, token: MemToken) -> Vec<R2p2Action> {
        match self.pending.remove(&token.0) {
            Some(Pending::WriteApply {
                reply_node,
                reply_pipe,
                transfer,
                block_index,
            }) => vec![R2p2Action::Send(Packet {
                src_node: self.node,
                src_pipe: self.pipe,
                dst_node: reply_node,
                dst_pipe: reply_pipe,
                kind: PacketKind::WriteAck {
                    transfer,
                    block_index,
                },
            })],
            other => panic!("write completion for non-write token: {other:?}"),
        }
    }

    /// Completes a reader-lock acquire RMW.
    ///
    /// # Panics
    ///
    /// Panics on unknown tokens.
    pub fn on_lock_reply(&mut self, token: MemToken, acquired: bool) -> Vec<R2p2Action> {
        match self.pending.remove(&token.0) {
            Some(Pending::SabreLock { slot }) => {
                let mut out = Vec::new();
                let actions = self.engine.on_lock_reply(slot, acquired);
                self.extend_with_completions(&mut out, actions);
                out
            }
            other => panic!("lock completion for non-lock token: {other:?}"),
        }
    }

    /// Delivers a coherence invalidation to the engine's stream buffers
    /// and to every live object capture.
    pub fn on_invalidation(&mut self, block: BlockAddr) {
        self.engine.on_invalidation(block);
        for ctx in self.captures.values_mut() {
            ctx.capture.on_invalidation(block);
        }
    }

    fn extend_with_completions(&mut self, out: &mut Vec<R2p2Action>, actions: Vec<Action>) {
        for action in actions {
            let Action::Complete { slot, id, atomic } = action;
            let route = self
                .routes
                .remove(&slot.0)
                .unwrap_or_else(|| panic!("completion for routeless slot of {id}"));
            out.push(R2p2Action::Send(Packet {
                src_node: self.node,
                src_pipe: self.pipe,
                dst_node: route.node,
                dst_pipe: route.pipe,
                kind: PacketKind::SabreValidation {
                    transfer: route.transfer,
                    atomic,
                },
            }));
            self.try_unpark();
        }
    }
}

/// Convenience: the blocks a registration spans (used by tests).
pub fn sabre_blocks(base: Addr, size_bytes: u32) -> BlockRange {
    BlockRange::covering(base, size_bytes as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sabre_mem::BLOCK_BYTES;

    fn req(kind: PacketKind) -> Packet {
        Packet {
            src_node: 0,
            src_pipe: 1,
            dst_node: 1,
            dst_pipe: 0,
            kind,
        }
    }

    fn block_with_version(v: u64) -> Block {
        let mut b = [0u8; BLOCK_BYTES];
        b[..8].copy_from_slice(&v.to_le_bytes());
        Block(b)
    }

    fn sabre_packets(transfer: u32, base: u64, size: u32) -> Vec<Packet> {
        let mut v = vec![req(PacketKind::SabreReg {
            transfer,
            base: Addr::new(base),
            size_bytes: size,
            version_offset: 0,
        })];
        for i in 0..BlockRange::covering(Addr::new(base), size as u64).block_count() {
            v.push(req(PacketKind::SabreReadReq {
                transfer,
                block_index: i as u32,
            }));
        }
        v
    }

    #[test]
    fn plain_read_round_trip() {
        let mut r = R2p2::new(1, 0, LightSabresConfig::default());
        r.on_packet(&req(PacketKind::ReadReq {
            addr: Addr::new(128),
            transfer: 5,
            block_index: 0,
        }));
        let issue = r.next_issue().expect("read queued");
        let R2p2Action::MemRead { token, block, kind } = issue else {
            panic!("expected MemRead, got {issue:?}");
        };
        assert_eq!(block, BlockAddr::from_index(2));
        assert_eq!(kind, ReadKind::Plain);
        let out = r.on_mem_reply(token, Block([9; BLOCK_BYTES]));
        assert_eq!(out.len(), 1);
        let R2p2Action::Send(reply) = out[0] else {
            panic!("expected Send");
        };
        assert_eq!(reply.dst_node, 0);
        assert_eq!(reply.dst_pipe, 1);
        assert!(matches!(
            reply.kind,
            PacketKind::ReadReply {
                transfer: 5,
                block_index: 0,
                ..
            }
        ));
        assert_eq!(r.stats().plain_reads, 1);
    }

    #[test]
    fn sabre_full_round_trip() {
        let mut r = R2p2::new(1, 0, LightSabresConfig::default());
        for pkt in sabre_packets(7, 0, 128) {
            r.on_packet(&pkt);
        }
        // Two data issues.
        let mut tokens = Vec::new();
        while let Some(a) = r.next_issue() {
            let R2p2Action::MemRead { token, kind, .. } = a else {
                panic!("expected MemRead, got {a:?}");
            };
            assert_eq!(kind, ReadKind::SabreData);
            tokens.push(token);
        }
        assert_eq!(tokens.len(), 2);
        let out0 = r.on_mem_reply(tokens[0], block_with_version(2));
        assert_eq!(out0.len(), 1, "payload forwarded immediately");
        let out1 = r.on_mem_reply(tokens[1], Block::ZERO);
        assert_eq!(out1.len(), 2, "last payload + validation");
        let R2p2Action::Send(val) = out1[1] else {
            panic!()
        };
        assert_eq!(
            val.kind,
            PacketKind::SabreValidation {
                transfer: 7,
                atomic: true
            }
        );
    }

    #[test]
    fn att_overflow_parks_and_unparks() {
        let cfg = LightSabresConfig {
            stream_buffers: 1,
            ..LightSabresConfig::default()
        };
        let mut r = R2p2::new(1, 0, cfg);
        for pkt in sabre_packets(1, 0, 64) {
            r.on_packet(&pkt);
        }
        for pkt in sabre_packets(2, 4096, 64) {
            r.on_packet(&pkt);
        }
        assert_eq!(r.stats().sabres_parked, 1);
        // Only SABRe 1's block issues.
        let R2p2Action::MemRead { token, block, .. } = r.next_issue().unwrap() else {
            panic!()
        };
        assert_eq!(block, BlockAddr::from_index(0));
        assert!(r.next_issue().is_none(), "SABRe 2 is parked");
        // Completing SABRe 1 unparks SABRe 2, replaying its request.
        let out = r.on_mem_reply(token, block_with_version(0));
        assert_eq!(out.len(), 2);
        let R2p2Action::MemRead { block, .. } = r.next_issue().unwrap() else {
            panic!()
        };
        assert_eq!(block, BlockAddr::from_index(64));
        assert_eq!(r.stats().sabres_registered, 2);
    }

    #[test]
    fn one_sided_write_acks() {
        let mut r = R2p2::new(1, 0, LightSabresConfig::default());
        r.on_packet(&req(PacketKind::WriteReq {
            addr: Addr::new(0),
            transfer: 3,
            block_index: 0,
            data: Block([1; BLOCK_BYTES]),
        }));
        let R2p2Action::MemWrite { token, .. } = r.next_issue().unwrap() else {
            panic!()
        };
        let out = r.on_mem_write_done(token);
        let R2p2Action::Send(ack) = out[0] else {
            panic!()
        };
        assert!(matches!(ack.kind, PacketKind::WriteAck { transfer: 3, .. }));
    }

    #[test]
    fn cas_and_unlock_round_trip() {
        let mut r = R2p2::new(1, 0, LightSabresConfig::default());
        r.on_packet(&req(PacketKind::CasReq {
            addr: Addr::new(0),
            transfer: 4,
        }));
        let R2p2Action::WriterCas {
            token,
            version_addr,
        } = r.next_issue().unwrap()
        else {
            panic!("expected WriterCas");
        };
        assert_eq!(version_addr, Addr::new(0));
        let out = r.on_cas_done(token, true);
        let R2p2Action::Send(rep) = out[0] else {
            panic!()
        };
        assert_eq!(
            rep.kind,
            PacketKind::CasReply {
                transfer: 4,
                acquired: true
            }
        );
        r.on_packet(&req(PacketKind::UnlockReq {
            addr: Addr::new(0),
            transfer: 5,
        }));
        let R2p2Action::WriterUnlock { token, .. } = r.next_issue().unwrap() else {
            panic!("expected WriterUnlock");
        };
        let out = r.on_unlock_done(token);
        let R2p2Action::Send(rep) = out[0] else {
            panic!()
        };
        assert_eq!(rep.kind, PacketKind::UnlockAck { transfer: 5 });
    }

    #[test]
    fn wf_capture_serves_header_then_slot_as_read_replies() {
        let mut r = R2p2::new(1, 0, LightSabresConfig::default());
        // Wire = header block + one 2-block slot (payload ≤ 120 B).
        r.on_packet(&req(PacketKind::WfReadReq {
            transfer: 11,
            base: Addr::new(0),
            size_bytes: 192,
        }));
        assert_eq!(r.stats().captured_reads, 1);
        // First issue: the header block.
        let R2p2Action::MemRead { token, block, kind } = r.next_issue().unwrap() else {
            panic!("expected MemRead")
        };
        assert_eq!(kind, ReadKind::Capture);
        assert_eq!(block, BlockAddr::from_index(0));
        assert!(r.next_issue().is_none(), "slot blocks wait for the header");
        // Publish word names slot 1 → slot base = 64 + 1*128 = 192.
        let out = r.on_mem_reply(token, block_with_version(1));
        assert!(out.is_empty(), "header reply only queues the slot reads");
        let mut tokens = Vec::new();
        let mut blocks = Vec::new();
        while let Some(a) = r.next_issue() {
            let R2p2Action::MemRead { token, block, .. } = a else {
                panic!("expected MemRead, got {a:?}")
            };
            tokens.push(token);
            blocks.push(block);
        }
        assert_eq!(
            blocks,
            vec![BlockAddr::from_index(3), BlockAddr::from_index(4)]
        );
        assert!(r
            .on_mem_reply(tokens[0], Block([5; BLOCK_BYTES]))
            .is_empty());
        let out = r.on_mem_reply(tokens[1], Block([6; BLOCK_BYTES]));
        assert_eq!(out.len(), 3, "header + 2 slot blocks stream back");
        for (i, a) in out.iter().enumerate() {
            let R2p2Action::Send(p) = a else {
                panic!("expected Send")
            };
            assert_eq!(p.dst_node, 0);
            assert_eq!(p.dst_pipe, 1);
            match p.kind {
                PacketKind::ReadReply {
                    transfer,
                    block_index,
                    ..
                } => {
                    assert_eq!(transfer, 11);
                    assert_eq!(block_index, i as u32);
                }
                ref k => panic!("expected ReadReply, got {k:?}"),
            }
        }
        assert_eq!(r.stats().capture_restarts, 0);
    }

    #[test]
    fn ohram_capture_restarts_on_conflicting_invalidation() {
        let mut r = R2p2::new(1, 0, LightSabresConfig::default());
        r.on_packet(&req(PacketKind::OhReadReq {
            transfer: 12,
            base: Addr::new(0),
            size_bytes: 128,
        }));
        let t0 = match r.next_issue().unwrap() {
            R2p2Action::MemRead { token, .. } => token,
            a => panic!("{a:?}"),
        };
        let t1 = match r.next_issue().unwrap() {
            R2p2Action::MemRead { token, .. } => token,
            a => panic!("{a:?}"),
        };
        assert!(r.on_mem_reply(t0, block_with_version(2)).is_empty());
        // A writer dirties block 1 before its read lands: restart.
        r.on_invalidation(BlockAddr::from_index(1));
        assert!(r.on_mem_reply(t1, Block::ZERO).is_empty());
        assert_eq!(r.stats().capture_restarts, 0, "counted at delivery");
        // The restarted pass runs clean and delivers both blocks.
        let mut out = Vec::new();
        while let Some(a) = r.next_issue() {
            let R2p2Action::MemRead { token, .. } = a else {
                panic!("expected MemRead, got {a:?}")
            };
            out = r.on_mem_reply(token, block_with_version(2));
        }
        assert_eq!(out.len(), 2);
        assert_eq!(r.stats().capture_restarts, 1);
    }

    #[test]
    fn catch_up_pull_streams_the_log_region() {
        let mut r = R2p2::new(1, 0, LightSabresConfig::default());
        r.on_packet(&req(PacketKind::CatchUpReq {
            transfer: 21,
            base: Addr::new(128),
            size_bytes: 192,
        }));
        assert_eq!(r.stats().catch_up_pulls, 1);
        let mut tokens = Vec::new();
        let mut blocks = Vec::new();
        while let Some(a) = r.next_issue() {
            let R2p2Action::MemRead { token, block, kind } = a else {
                panic!("expected MemRead, got {a:?}")
            };
            assert_eq!(kind, ReadKind::CatchUp);
            tokens.push(token);
            blocks.push(block);
        }
        // Address order, head block of the region first.
        assert_eq!(
            blocks,
            vec![
                BlockAddr::from_index(2),
                BlockAddr::from_index(3),
                BlockAddr::from_index(4)
            ]
        );
        for (i, token) in tokens.into_iter().enumerate() {
            let out = r.on_mem_reply(token, Block([i as u8; BLOCK_BYTES]));
            assert_eq!(out.len(), 1);
            let R2p2Action::Send(rep) = out[0] else {
                panic!("expected Send")
            };
            assert_eq!(rep.dst_node, 0);
            match rep.kind {
                PacketKind::CatchUpReply {
                    transfer,
                    block_index,
                    data,
                } => {
                    assert_eq!(transfer, 21);
                    assert_eq!(block_index, i as u32);
                    assert_eq!(data.0[0], i as u8);
                }
                ref k => panic!("expected CatchUpReply, got {k:?}"),
            }
        }
    }

    #[test]
    fn guard_refuses_reads_while_catching_up() {
        let mut r = R2p2::new(1, 0, LightSabresConfig::default());
        r.set_catching_up(true);
        for kind in [
            PacketKind::ReadReq {
                addr: Addr::new(0),
                transfer: 1,
                block_index: 0,
            },
            PacketKind::SabreReg {
                transfer: 2,
                base: Addr::new(0),
                size_bytes: 64,
                version_offset: 0,
            },
            PacketKind::WfReadReq {
                transfer: 3,
                base: Addr::new(0),
                size_bytes: 128,
            },
            PacketKind::OhReadReq {
                transfer: 4,
                base: Addr::new(0),
                size_bytes: 128,
            },
        ] {
            r.on_packet(&req(kind));
        }
        assert_eq!(r.stats().reads_refused, 4);
        assert_eq!(r.stats().plain_reads, 0, "nothing was served");
        assert_eq!(r.stats().sabres_registered, 0);
        for expected_transfer in 1..=4u32 {
            let a = r.next_issue().expect("one refusal per request");
            let R2p2Action::Send(rep) = a else {
                panic!("expected Send, got {a:?}")
            };
            assert_eq!(
                rep.kind,
                PacketKind::ReadRefused {
                    transfer: expected_transfer
                }
            );
            assert_eq!(rep.dst_node, 0, "refusal returns to the requester");
            assert_eq!(rep.dst_pipe, 1);
        }
        // Catch-up pulls are refused too — this node's own log head is
        // stale, and a sibling converging against it would stop short.
        assert!(r.on_packet(&req(PacketKind::CatchUpReq {
            transfer: 5,
            base: Addr::new(0),
            size_bytes: 64,
        })));
        assert_eq!(r.stats().catch_up_pulls, 0);
        assert_eq!(r.stats().catch_up_refused, 1);
        assert_eq!(r.stats().reads_refused, 4, "pull refusals count apart");
        let a = r.next_issue().expect("the pull refusal");
        let R2p2Action::Send(rep) = a else {
            panic!("expected Send, got {a:?}")
        };
        assert_eq!(rep.kind, PacketKind::ReadRefused { transfer: 5 });
        // Dropping the counter to zero lifts the guard.
        r.set_catching_up(false);
        assert!(!r.is_catching_up());
        r.on_packet(&req(PacketKind::ReadReq {
            addr: Addr::new(0),
            transfer: 6,
            block_index: 0,
        }));
        assert_eq!(r.stats().plain_reads, 1);
    }

    #[test]
    fn guard_counts_and_nests() {
        let mut r = R2p2::new(1, 0, LightSabresConfig::default());
        r.set_catching_up(true);
        r.set_catching_up(true);
        r.set_catching_up(false);
        assert!(r.is_catching_up(), "one recovering writer still replaying");
        r.set_catching_up(false);
        assert!(!r.is_catching_up());
    }

    #[test]
    fn serve_stale_trades_freshness_for_availability() {
        let mut r = R2p2::new(1, 0, LightSabresConfig::default()).serving_stale();
        r.set_catching_up(true);
        r.on_packet(&req(PacketKind::ReadReq {
            addr: Addr::new(0),
            transfer: 9,
            block_index: 0,
        }));
        assert_eq!(r.stats().stale_served, 1);
        assert_eq!(r.stats().reads_refused, 0);
        assert_eq!(r.stats().plain_reads, 1, "the read is served normally");
        // Writes are never guarded either way.
        r.on_packet(&req(PacketKind::WriteReq {
            addr: Addr::new(0),
            transfer: 10,
            block_index: 0,
            data: Block::ZERO,
        }));
        assert_eq!(r.stats().writes, 1);
        assert_eq!(r.stats().stale_served, 1, "writes are not stale-served");
        // Catch-up pulls stay refused even in serve-stale mode: a stale
        // log is useless to a recovering sibling, never merely "stale".
        r.on_packet(&req(PacketKind::CatchUpReq {
            transfer: 11,
            base: Addr::new(0),
            size_bytes: 64,
        }));
        assert_eq!(r.stats().catch_up_refused, 1);
        assert_eq!(r.stats().catch_up_pulls, 0);
    }

    #[test]
    fn invalidation_reaches_engine() {
        let mut r = R2p2::new(1, 0, LightSabresConfig::default());
        for pkt in sabre_packets(1, 0, 128) {
            r.on_packet(&pkt);
        }
        let t0 = match r.next_issue().unwrap() {
            R2p2Action::MemRead { token, .. } => token,
            a => panic!("{a:?}"),
        };
        let t1 = match r.next_issue().unwrap() {
            R2p2Action::MemRead { token, .. } => token,
            a => panic!("{a:?}"),
        };
        // Reply for block 1 first, then a conflicting invalidation.
        r.on_mem_reply(t1, Block::ZERO);
        r.on_invalidation(BlockAddr::from_index(1));
        let out = r.on_mem_reply(t0, block_with_version(0));
        let R2p2Action::Send(val) = out[1] else {
            panic!()
        };
        assert_eq!(
            val.kind,
            PacketKind::SabreValidation {
                transfer: 1,
                atomic: false
            }
        );
    }
}
