//! The source-side pipeline pair: Request Generation + Request Completion.
//!
//! One `SourcePipeline` models one RGP/RCP backend pair (Fig. 6). The RGP
//! half unrolls Work Queue entries into cache-block-sized packets — plain
//! reads balance across the destination's R2P2s *per block*, while a SABRe
//! is pinned to a single R2P2 (§5.1's load-balancing discussion) and is
//! preceded by its registration packet. The RCP half collects replies,
//! produces the DMA writes into the local buffer, and reports a
//! [`Completion`] carrying the SABRe success bit once the transfer's last
//! packet (the validation, for SABRes) has arrived.

use std::collections::{HashMap, HashSet};

use sabre_mem::{Addr, BlockRange, BLOCK_BYTES};

use crate::queues::{CqEntry, OpKind, WqEntry};
use crate::wire::{Block, NodeId, Packet, PacketKind, PipeId};

/// A finished transfer, ready to become a CQ entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completion {
    /// The originating WQ entry's id.
    pub wq_id: u64,
    /// Operation type.
    pub op: OpKind,
    /// SABRes: atomicity outcome; `true` otherwise.
    pub success: bool,
    /// Whether the destination refused the read (replica catching up).
    pub refused: bool,
    /// Payload bytes moved.
    pub bytes: u32,
}

impl Completion {
    /// Converts into the CQ entry the frontend writes.
    pub fn into_cq_entry(self) -> CqEntry {
        CqEntry {
            wq_id: self.wq_id,
            op: self.op,
            success: self.success,
            refused: self.refused,
            bytes: self.bytes,
        }
    }
}

/// A DMA write of one reply's payload into the local buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LocalWrite {
    /// Local address the block lands at.
    pub addr: Addr,
    /// The payload.
    pub data: Block,
}

#[derive(Debug)]
struct TransferState {
    wq_id: u64,
    op: OpKind,
    local_buf: Addr,
    size_bytes: u32,
    total_blocks: u32,
    replies: u32,
    /// SABRes: outcome from the validation packet, once received.
    sabre_atomic: Option<bool>,
}

impl TransferState {
    fn is_complete(&self) -> bool {
        self.replies == self.total_blocks
            && (self.op != OpKind::Sabre || self.sabre_atomic.is_some())
    }

    fn completion(&self) -> Completion {
        Completion {
            wq_id: self.wq_id,
            op: self.op,
            success: self.sabre_atomic.unwrap_or(true),
            refused: false,
            bytes: self.size_bytes,
        }
    }
}

/// One RGP/RCP backend pair.
///
/// # Example
///
/// ```
/// use sabre_sonuma::{SourcePipeline, WqEntry, OpKind};
/// use sabre_mem::Addr;
///
/// let mut pipe = SourcePipeline::new(0, 0, 4);
/// let wq = WqEntry {
///     wq_id: 1, op: OpKind::Read, dst_node: 1,
///     remote_addr: Addr::new(0), local_buf: Addr::new(4096),
///     size_bytes: 256, version_offset: 0,
/// };
/// let pkts = pipe.start_transfer(&wq, None);
/// assert_eq!(pkts.len(), 4); // 256 B unrolled into 4 block requests
/// ```
#[derive(Debug)]
pub struct SourcePipeline {
    node: NodeId,
    pipe: PipeId,
    /// Number of R2P2s at each destination node, for per-block balancing.
    dest_pipes: u8,
    next_transfer: u32,
    transfers: HashMap<u32, TransferState>,
    /// Transfers completed early by a [`PacketKind::ReadRefused`]: late
    /// replies for these ids are expected stragglers (a pipe may have
    /// served some blocks before the guard flipped), not protocol bugs.
    refused: HashSet<u32>,
    rr_cursor: u8,
}

impl SourcePipeline {
    /// Creates the pipeline for backend `pipe` of node `node`, assuming
    /// `dest_pipes` R2P2s at every destination.
    ///
    /// # Panics
    ///
    /// Panics if `dest_pipes == 0`.
    pub fn new(node: NodeId, pipe: PipeId, dest_pipes: u8) -> Self {
        assert!(dest_pipes > 0, "destinations need at least one R2P2");
        SourcePipeline {
            node,
            pipe,
            dest_pipes,
            next_transfer: 0,
            transfers: HashMap::new(),
            refused: HashSet::new(),
            rr_cursor: 0,
        }
    }

    /// Transfers currently in flight.
    pub fn inflight(&self) -> usize {
        self.transfers.len()
    }

    /// RGP half: unrolls a WQ entry into its request packets, in the order
    /// they enter the network. Writes must supply the local payload bytes.
    ///
    /// # Panics
    ///
    /// Panics if a write provides no (or too little) data, or if the entry
    /// is malformed (zero size) — WQ validation is the frontend's job.
    pub fn start_transfer(&mut self, wq: &WqEntry, write_data: Option<&[u8]>) -> Vec<Packet> {
        assert!(wq.size_bytes > 0, "zero-sized transfer");
        let transfer = self.next_transfer;
        self.next_transfer = self.next_transfer.wrapping_add(1);
        let range = BlockRange::covering(wq.remote_addr, wq.size_bytes as u64);
        let total_blocks = range.block_count() as u32;
        self.transfers.insert(
            transfer,
            TransferState {
                wq_id: wq.wq_id,
                op: wq.op,
                local_buf: wq.local_buf,
                size_bytes: wq.size_bytes,
                total_blocks,
                replies: 0,
                sabre_atomic: None,
            },
        );

        let mut pkts = Vec::with_capacity(total_blocks as usize + 1);
        let mk = |dst_pipe: u8, kind: PacketKind| Packet {
            src_node: self.node,
            src_pipe: self.pipe,
            dst_node: wq.dst_node,
            dst_pipe,
            kind,
        };
        match wq.op {
            OpKind::Read => {
                for i in 0..total_blocks {
                    // Per-block balancing across destination R2P2s.
                    let dst_pipe = (self.rr_cursor + i as u8) % self.dest_pipes;
                    pkts.push(mk(
                        dst_pipe,
                        PacketKind::ReadReq {
                            addr: wq.remote_addr + i as u64 * BLOCK_BYTES as u64,
                            transfer,
                            block_index: i,
                        },
                    ));
                }
                self.rr_cursor = (self.rr_cursor + total_blocks as u8) % self.dest_pipes;
            }
            OpKind::Write => {
                let data =
                    write_data.expect("one-sided writes must supply the local payload bytes");
                assert!(
                    data.len() >= wq.size_bytes as usize,
                    "write data shorter than transfer"
                );
                for i in 0..total_blocks {
                    let mut block = [0u8; BLOCK_BYTES];
                    let start = i as usize * BLOCK_BYTES;
                    let end = (start + BLOCK_BYTES).min(data.len());
                    block[..end - start].copy_from_slice(&data[start..end]);
                    let dst_pipe = (self.rr_cursor + i as u8) % self.dest_pipes;
                    pkts.push(mk(
                        dst_pipe,
                        PacketKind::WriteReq {
                            addr: wq.remote_addr + i as u64 * BLOCK_BYTES as u64,
                            transfer,
                            block_index: i,
                            data: Block(block),
                        },
                    ));
                }
                self.rr_cursor = (self.rr_cursor + total_blocks as u8) % self.dest_pipes;
            }
            OpKind::LockCas => {
                let dst_pipe = (transfer % self.dest_pipes as u32) as u8;
                pkts.push(mk(
                    dst_pipe,
                    PacketKind::CasReq {
                        addr: wq.remote_addr,
                        transfer,
                    },
                ));
            }
            OpKind::Unlock => {
                let dst_pipe = (transfer % self.dest_pipes as u32) as u8;
                pkts.push(mk(
                    dst_pipe,
                    PacketKind::UnlockReq {
                        addr: wq.remote_addr,
                        transfer,
                    },
                ));
            }
            OpKind::CatchUpPull => {
                // One request; the peer streams the whole log region back
                // as a burst of CatchUpReplys, one per block.
                let dst_pipe = (transfer % self.dest_pipes as u32) as u8;
                pkts.push(mk(
                    dst_pipe,
                    PacketKind::CatchUpReq {
                        transfer,
                        base: wq.remote_addr,
                        size_bytes: wq.size_bytes,
                    },
                ));
            }
            OpKind::WfRead | OpKind::OhRead => {
                // A captured read maps to a single R2P2, which assembles
                // the consistent image server-side and streams it back as
                // plain ReadReplys (one per block of the wire image).
                let dst_pipe = (transfer % self.dest_pipes as u32) as u8;
                let kind = if wq.op == OpKind::WfRead {
                    PacketKind::WfReadReq {
                        transfer,
                        base: wq.remote_addr,
                        size_bytes: wq.size_bytes,
                    }
                } else {
                    PacketKind::OhReadReq {
                        transfer,
                        base: wq.remote_addr,
                        size_bytes: wq.size_bytes,
                    }
                };
                pkts.push(mk(dst_pipe, kind));
            }
            OpKind::Sabre => {
                // A SABRe maps to a single R2P2 (§5.1).
                let dst_pipe = (transfer % self.dest_pipes as u32) as u8;
                pkts.push(mk(
                    dst_pipe,
                    PacketKind::SabreReg {
                        transfer,
                        base: wq.remote_addr,
                        size_bytes: wq.size_bytes,
                        version_offset: wq.version_offset,
                    },
                ));
                for i in 0..total_blocks {
                    pkts.push(mk(
                        dst_pipe,
                        PacketKind::SabreReadReq {
                            transfer,
                            block_index: i,
                        },
                    ));
                }
            }
        }
        pkts
    }

    /// RCP half: consumes one reply packet. Returns the DMA write it
    /// implies (payload replies only) and the completion when this was the
    /// transfer's last packet.
    ///
    /// # Panics
    ///
    /// Panics on replies for unknown transfers or over-delivery — both
    /// indicate protocol bugs the simulator must not mask.
    pub fn on_reply(&mut self, pkt: &Packet) -> (Option<LocalWrite>, Option<Completion>) {
        if let PacketKind::ReadRefused { transfer } = pkt.kind {
            // The destination's epoch/seq guard bounced the read. The
            // first refusal completes the transfer unsuccessfully; later
            // refusals of other request packets of the same transfer are
            // stragglers.
            let Some(state) = self.transfers.remove(&transfer) else {
                assert!(
                    self.refused.contains(&transfer),
                    "refusal for unknown transfer {transfer}"
                );
                return (None, None);
            };
            self.refused.insert(transfer);
            let mut done = state.completion();
            done.success = false;
            done.refused = true;
            return (None, Some(done));
        }
        let (transfer, write, is_validation, atomic) = match pkt.kind {
            PacketKind::ReadReply {
                transfer,
                block_index,
                data,
            }
            | PacketKind::SabreReply {
                transfer,
                block_index,
                data,
            }
            | PacketKind::CatchUpReply {
                transfer,
                block_index,
                data,
            } => (transfer, Some((block_index, data)), false, true),
            PacketKind::WriteAck { transfer, .. } | PacketKind::UnlockAck { transfer } => {
                (transfer, None, false, true)
            }
            PacketKind::CasReply { transfer, acquired } => (transfer, None, false, acquired),
            PacketKind::SabreValidation { transfer, atomic } => (transfer, None, true, atomic),
            _ => panic!("RCP received a non-reply packet: {pkt:?}"),
        };
        let Some(state) = self.transfers.get_mut(&transfer) else {
            if self.refused.contains(&transfer) {
                // A pipe served some blocks before the guard flipped and
                // another pipe's refusal already completed the transfer;
                // drop the straggler on the floor.
                return (None, None);
            }
            panic!("reply for unknown transfer {transfer}");
        };

        let mut local_write = None;
        if state.op == OpKind::LockCas && !atomic {
            // CAS contended: surface failure in the completion.
            state.sabre_atomic = Some(false);
        }
        if is_validation {
            assert!(
                state.op == OpKind::Sabre && state.sabre_atomic.is_none(),
                "unexpected validation packet for transfer {transfer}"
            );
            state.sabre_atomic = Some(atomic);
        } else {
            state.replies += 1;
            assert!(
                state.replies <= state.total_blocks,
                "transfer {transfer} over-delivered"
            );
            if let Some((block_index, data)) = write {
                local_write = Some(LocalWrite {
                    addr: state.local_buf + block_index as u64 * BLOCK_BYTES as u64,
                    data,
                });
            }
        }

        if state.is_complete() {
            let done = state.completion();
            self.transfers.remove(&transfer);
            (local_write, Some(done))
        } else {
            (local_write, None)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_wq(size: u32) -> WqEntry {
        WqEntry {
            wq_id: 42,
            op: OpKind::Read,
            dst_node: 1,
            remote_addr: Addr::new(0),
            local_buf: Addr::new(1 << 20),
            size_bytes: size,
            version_offset: 0,
        }
    }

    #[test]
    fn read_unrolls_and_balances() {
        let mut p = SourcePipeline::new(0, 0, 4);
        let pkts = p.start_transfer(&read_wq(512), None);
        assert_eq!(pkts.len(), 8);
        // Per-block round-robin across the 4 destination R2P2s.
        let pipes: Vec<u8> = pkts.iter().map(|p| p.dst_pipe).collect();
        assert_eq!(pipes, vec![0, 1, 2, 3, 0, 1, 2, 3]);
        // A second transfer continues the rotation rather than restarting.
        let pkts2 = p.start_transfer(&read_wq(128), None);
        assert_eq!(pkts2[0].dst_pipe, 0);
    }

    #[test]
    fn sabre_pins_to_one_pipe_and_registers_first() {
        let mut p = SourcePipeline::new(0, 2, 4);
        let mut wq = read_wq(256);
        wq.op = OpKind::Sabre;
        let pkts = p.start_transfer(&wq, None);
        assert_eq!(pkts.len(), 5); // registration + 4 data requests
        assert!(matches!(pkts[0].kind, PacketKind::SabreReg { .. }));
        let pipe = pkts[0].dst_pipe;
        assert!(pkts.iter().all(|p| p.dst_pipe == pipe));
        assert!(pkts.iter().all(|p| p.src_pipe == 2));
    }

    #[test]
    fn read_completion_after_all_replies() {
        let mut p = SourcePipeline::new(0, 0, 4);
        let pkts = p.start_transfer(&read_wq(128), None);
        let reply0 = pkts[0].reply_to(PacketKind::ReadReply {
            transfer: 0,
            block_index: 0,
            data: Block([7; BLOCK_BYTES]),
        });
        let (w, done) = p.on_reply(&reply0);
        let w = w.expect("payload reply produces a DMA write");
        assert_eq!(w.addr, Addr::new(1 << 20));
        assert!(done.is_none());
        let reply1 = pkts[1].reply_to(PacketKind::ReadReply {
            transfer: 0,
            block_index: 1,
            data: Block::ZERO,
        });
        let (w, done) = p.on_reply(&reply1);
        assert_eq!(w.unwrap().addr, Addr::new((1 << 20) + 64));
        let done = done.expect("transfer complete");
        assert_eq!(done.wq_id, 42);
        assert!(done.success);
        assert_eq!(p.inflight(), 0);
    }

    #[test]
    fn sabre_needs_validation_to_complete() {
        let mut p = SourcePipeline::new(0, 0, 1);
        let mut wq = read_wq(64);
        wq.op = OpKind::Sabre;
        let pkts = p.start_transfer(&wq, None);
        let data = pkts[1].reply_to(PacketKind::SabreReply {
            transfer: 0,
            block_index: 0,
            data: Block::ZERO,
        });
        let (_, done) = p.on_reply(&data);
        assert!(done.is_none(), "data alone must not complete a SABRe");
        let val = pkts[0].reply_to(PacketKind::SabreValidation {
            transfer: 0,
            atomic: false,
        });
        let (w, done) = p.on_reply(&val);
        assert!(w.is_none());
        let done = done.expect("validation completes the SABRe");
        assert!(!done.success, "atomicity failure must surface in the CQ");
    }

    #[test]
    fn validation_before_last_data_is_handled() {
        // Revalidation reads can delay data ordering at the R2P2; the RCP
        // must accept either order.
        let mut p = SourcePipeline::new(0, 0, 1);
        let mut wq = read_wq(128);
        wq.op = OpKind::Sabre;
        let pkts = p.start_transfer(&wq, None);
        let val = pkts[0].reply_to(PacketKind::SabreValidation {
            transfer: 0,
            atomic: true,
        });
        assert!(p.on_reply(&val).1.is_none());
        for i in 0..2 {
            let data = pkts[0].reply_to(PacketKind::SabreReply {
                transfer: 0,
                block_index: i,
                data: Block::ZERO,
            });
            let (_, done) = p.on_reply(&data);
            assert_eq!(done.is_some(), i == 1);
        }
    }

    #[test]
    fn write_carries_data_and_completes_on_acks() {
        let mut p = SourcePipeline::new(0, 0, 2);
        let mut wq = read_wq(100);
        wq.op = OpKind::Write;
        let payload: Vec<u8> = (0..100).collect();
        let pkts = p.start_transfer(&wq, Some(&payload));
        assert_eq!(pkts.len(), 2);
        match pkts[1].kind {
            PacketKind::WriteReq { data, .. } => assert_eq!(data.0[0], 64),
            ref k => panic!("expected WriteReq, got {k:?}"),
        }
        for (i, pkt) in pkts.iter().enumerate() {
            let ack = pkt.reply_to(PacketKind::WriteAck {
                transfer: 0,
                block_index: i as u32,
            });
            let (w, done) = p.on_reply(&ack);
            assert!(w.is_none());
            assert_eq!(done.is_some(), i == 1);
        }
    }

    #[test]
    fn lock_cas_transfer_round_trip() {
        let mut p = SourcePipeline::new(0, 0, 4);
        let mut wq = read_wq(8);
        wq.op = OpKind::LockCas;
        let pkts = p.start_transfer(&wq, None);
        assert_eq!(pkts.len(), 1);
        assert!(matches!(pkts[0].kind, PacketKind::CasReq { .. }));
        // Contended CAS surfaces as an unsuccessful completion.
        let rep = pkts[0].reply_to(PacketKind::CasReply {
            transfer: 0,
            acquired: false,
        });
        let (w, done) = p.on_reply(&rep);
        assert!(w.is_none());
        let done = done.expect("single-packet transfer completes");
        assert!(!done.success);
        assert_eq!(done.op, OpKind::LockCas);
    }

    #[test]
    fn unlock_transfer_round_trip() {
        let mut p = SourcePipeline::new(0, 0, 4);
        let mut wq = read_wq(8);
        wq.op = OpKind::Unlock;
        let pkts = p.start_transfer(&wq, None);
        assert!(matches!(pkts[0].kind, PacketKind::UnlockReq { .. }));
        let rep = pkts[0].reply_to(PacketKind::UnlockAck { transfer: 0 });
        let (_, done) = p.on_reply(&rep);
        assert!(done.expect("completes").success);
    }

    #[test]
    fn captured_reads_send_one_request_and_complete_on_replies() {
        for op in [OpKind::WfRead, OpKind::OhRead] {
            let mut p = SourcePipeline::new(0, 0, 4);
            let mut wq = read_wq(128);
            wq.op = op;
            let pkts = p.start_transfer(&wq, None);
            assert_eq!(pkts.len(), 1, "a captured read is a single request");
            match (op, pkts[0].kind) {
                (OpKind::WfRead, PacketKind::WfReadReq { size_bytes, .. })
                | (OpKind::OhRead, PacketKind::OhReadReq { size_bytes, .. }) => {
                    assert_eq!(size_bytes, 128)
                }
                (_, ref k) => panic!("wrong request kind {k:?}"),
            }
            // The store streams the image back as plain ReadReplys.
            for i in 0..2 {
                let rep = pkts[0].reply_to(PacketKind::ReadReply {
                    transfer: 0,
                    block_index: i,
                    data: Block([i as u8; BLOCK_BYTES]),
                });
                let (w, done) = p.on_reply(&rep);
                assert_eq!(
                    w.expect("payload lands in the local buffer").addr,
                    Addr::new((1 << 20) + i as u64 * 64)
                );
                assert_eq!(done.is_some(), i == 1);
                if let Some(done) = done {
                    assert!(done.success, "captured reads never fail");
                    assert_eq!(done.op, op);
                }
            }
        }
    }

    #[test]
    fn catch_up_pull_sends_one_request_and_completes_on_burst() {
        let mut p = SourcePipeline::new(0, 0, 4);
        let mut wq = read_wq(192); // a 3-block log region
        wq.op = OpKind::CatchUpPull;
        let pkts = p.start_transfer(&wq, None);
        assert_eq!(pkts.len(), 1, "a pull is a single request");
        match pkts[0].kind {
            PacketKind::CatchUpReq {
                base, size_bytes, ..
            } => {
                assert_eq!(base, Addr::new(0));
                assert_eq!(size_bytes, 192);
            }
            ref k => panic!("expected CatchUpReq, got {k:?}"),
        }
        for i in 0..3 {
            let rep = pkts[0].reply_to(PacketKind::CatchUpReply {
                transfer: 0,
                block_index: i,
                data: Block([i as u8 + 1; BLOCK_BYTES]),
            });
            let (w, done) = p.on_reply(&rep);
            assert_eq!(
                w.expect("log blocks land in the pull buffer").addr,
                Addr::new((1 << 20) + i as u64 * 64)
            );
            assert_eq!(done.is_some(), i == 2);
            if let Some(done) = done {
                assert!(done.success);
                assert!(!done.refused);
                assert_eq!(done.op, OpKind::CatchUpPull);
            }
        }
        assert_eq!(p.inflight(), 0);
    }

    #[test]
    fn refusal_completes_early_and_tolerates_stragglers() {
        let mut p = SourcePipeline::new(0, 0, 4);
        let pkts = p.start_transfer(&read_wq(256), None); // 4 blocks

        // One pipe served a block before the guard flipped…
        let served = pkts[0].reply_to(PacketKind::ReadReply {
            transfer: 0,
            block_index: 0,
            data: Block::ZERO,
        });
        assert!(p.on_reply(&served).1.is_none());
        // …then another pipe refused: the transfer completes refused.
        let refusal = pkts[1].reply_to(PacketKind::ReadRefused { transfer: 0 });
        let (w, done) = p.on_reply(&refusal);
        assert!(w.is_none());
        let done = done.expect("refusal completes the transfer");
        assert!(!done.success);
        assert!(done.refused);
        assert_eq!(p.inflight(), 0);
        // Stragglers for the refused transfer are dropped, not panicked on:
        // a second refusal and a late data reply.
        let refusal2 = pkts[2].reply_to(PacketKind::ReadRefused { transfer: 0 });
        assert_eq!(p.on_reply(&refusal2), (None, None));
        let late = pkts[3].reply_to(PacketKind::ReadReply {
            transfer: 0,
            block_index: 3,
            data: Block::ZERO,
        });
        assert_eq!(p.on_reply(&late), (None, None));
    }

    #[test]
    #[should_panic(expected = "refusal for unknown transfer")]
    fn refusal_for_never_issued_transfer_panics() {
        let mut p = SourcePipeline::new(0, 0, 1);
        let pkt = Packet {
            src_node: 1,
            src_pipe: 0,
            dst_node: 0,
            dst_pipe: 0,
            kind: PacketKind::ReadRefused { transfer: 7 },
        };
        let _ = p.on_reply(&pkt);
    }

    #[test]
    #[should_panic(expected = "unknown transfer")]
    fn unknown_transfer_reply_panics() {
        let mut p = SourcePipeline::new(0, 0, 1);
        let pkt = Packet {
            src_node: 1,
            src_pipe: 0,
            dst_node: 0,
            dst_pipe: 0,
            kind: PacketKind::ReadReply {
                transfer: 99,
                block_index: 0,
                data: Block::ZERO,
            },
        };
        let _ = p.on_reply(&pkt);
    }
}
