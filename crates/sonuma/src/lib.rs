//! The Scale-Out NUMA (soNUMA) protocol substrate.
//!
//! soNUMA is the rack-scale architecture the paper builds on: SoC nodes with
//! on-chip integrated **Remote Memory Controllers** (RMCs) connected by a
//! lossless fabric, exposing one-sided remote reads and writes through
//! memory-mapped **Work Queue / Completion Queue** pairs. Three independent
//! pipelines handle every transfer (Fig. 5):
//!
//! * **RGP** (Request Generation Pipeline) at the source unrolls a transfer
//!   into cache-block-sized request packets — a deliberate design choice
//!   that gives the transport layer a strict request-reply flow-control
//!   invariant;
//! * **R2P2** (Remote Request Processing Pipeline) at the destination
//!   services requests against local memory — statelessly for plain reads
//!   and writes, and via the [`sabre_core::LightSabres`] engine for SABRes;
//! * **RCP** (Request Completion Pipeline) back at the source collects
//!   replies, DMA-writes payloads into the local buffer, and posts the CQ
//!   entry (with the SABRe success bit of §5.2).
//!
//! The SABRe protocol extensions (§5.2) are implemented exactly: a
//! registration packet precedes the data requests, a payload-free
//! validation packet closes every SABRe with its atomicity outcome, and the
//! CQ entry carries a success field.
//!
//! Like `sabre-core`, everything here is sans-IO: pipelines consume packets
//! and produce actions; `sabre-rack` gives them time, memory and wires.

pub mod pipeline;
pub mod queues;
pub mod r2p2;
pub mod wire;

pub use pipeline::{Completion, LocalWrite, SourcePipeline};
pub use queues::{CqEntry, OpKind, WqEntry};
pub use r2p2::{MemToken, R2p2, R2p2Action, ReadKind};
pub use wire::{Block, NodeId, Packet, PacketKind, PipeId};
