//! Shape assertions on the paper's experiments.
//!
//! Absolute numbers are not the reproduction's claim — the substrate is a
//! calibrated simulator, not the authors' Flexus testbed — but the *shape*
//! of every figure is: who wins, by roughly what factor, and how the gap
//! moves with object size and conflict rate. These tests pin those shapes
//! down on quick (scaled-down) runs so regressions in any layer of the
//! stack surface as figure distortions.

use sabre_bench::experiments as ex;
use sabre_bench::RunOpts;

const Q: RunOpts = RunOpts {
    quick: true,
    threads: None,
};

#[test]
fn fig7a_sabres_track_remote_reads_and_nospec_pays() {
    let points = ex::fig7a::data(Q);
    for p in &points {
        // LightSABRes match plain remote reads closely at small sizes…
        if p.size <= 1024 {
            assert!(
                (p.sabre_ns - p.read_ns) / p.read_ns < 0.20,
                "{}B: sabre {:.0} vs read {:.0}",
                p.size,
                p.sabre_ns,
                p.read_ns
            );
        }
        // …and never beat them (they do strictly more work).
        assert!(p.sabre_ns >= p.read_ns * 0.95, "{}B inversion", p.size);
        // The non-speculative strawman is never faster than LightSABRes.
        assert!(
            p.nospec_ns >= p.sabre_ns * 0.98,
            "{}B nospec faster",
            p.size
        );
    }
    // The paper's headline: a two-cache-block SABRe pays up to ~40% for
    // the serialized version read.
    let p128 = points.iter().find(|p| p.size == 128).expect("128B point");
    let penalty = p128.nospec_ns / p128.sabre_ns - 1.0;
    assert!(
        (0.15..0.60).contains(&penalty),
        "128B no-spec penalty {penalty:.2} out of the paper's band"
    );
    // The penalty shrinks as transfer time dominates.
    let p8k = points.iter().find(|p| p.size == 8192).expect("8KB point");
    assert!(p8k.nospec_ns / p8k.sabre_ns - 1.0 < penalty);
}

#[test]
fn fig7b_throughput_curves_match() {
    let points = ex::fig7b::data(Q);
    for p in &points {
        // Identical-curves claim: SABRes within 15% of plain reads.
        assert!(
            p.sabre_gbps > p.read_gbps * 0.85,
            "{}B: sabre {:.1} vs read {:.1}",
            p.size,
            p.sabre_gbps,
            p.read_gbps
        );
    }
    // Both saturate near the 4 × 20 GBps R2P2 aggregate at large sizes.
    let p8k = points.iter().find(|p| p.size == 8192).expect("8KB point");
    assert!(
        p8k.read_gbps > 60.0 && p8k.read_gbps < 85.0,
        "reads plateau at {:.1} GB/s",
        p8k.read_gbps
    );
    // Throughput grows with size up to the plateau.
    assert!(points[0].read_gbps < points.last().unwrap().read_gbps);
}

#[test]
fn fig8_gap_grows_with_size_and_throughput_declines_with_writers() {
    let points = ex::fig8::data(Q);
    let gap = |p: &ex::fig8::Point| p.sabre_gbps / p.percl_gbps - 1.0;
    for size in ex::fig8::SIZES {
        let series: Vec<_> = points.iter().filter(|p| p.size == size).collect();
        let unconflicted = series.iter().find(|p| p.writers == 0).expect("0 writers");
        // LightSABRes win at zero conflict, at every size.
        assert!(
            gap(unconflicted) > 0.05,
            "{size}B: no win at 0 writers ({:.2})",
            gap(unconflicted)
        );
        // Conflict hurts both mechanisms.
        let most = series.iter().max_by_key(|p| p.writers).expect("writers");
        assert!(most.sabre_gbps < unconflicted.sabre_gbps * 1.02);
        assert!(most.percl_gbps < unconflicted.percl_gbps * 1.02);
        // Abort rates grow with writers.
        assert!(most.sabre_abort_rate > unconflicted.sabre_abort_rate);
    }
    // The gap at 1 KB+ exceeds the 128 B gap (the software check's cost
    // scales with size).
    let g128 = gap(points
        .iter()
        .find(|p| p.size == 128 && p.writers == 0)
        .unwrap());
    let g8k = gap(points
        .iter()
        .find(|p| p.size == 8192 && p.writers == 0)
        .unwrap());
    assert!(g8k > g128, "8KB gap {g8k:.2} <= 128B gap {g128:.2}");
}

#[test]
fn fig9a_improvement_grows_with_object_size() {
    let points = ex::fig9a::data(Q);
    for p in &points {
        // The paper's band: 35% (128 B) to 52% (8 KB); allow slack.
        let imp = p.improvement();
        assert!(
            (0.20..0.65).contains(&imp),
            "{}B improvement {imp:.2} out of band",
            p.size
        );
        // The baseline always pays stripping; the SABRe variant never does.
        assert!(p.baseline.strip_ns > 0.0);
        assert!(p.sabre.strip_ns == 0.0);
        // Zero-copy makes the SABRe app phase costlier (LLC vs L1 data).
        assert!(p.sabre.app_ns >= p.baseline.app_ns);
    }
    let first = points.first().unwrap().improvement();
    let last = points.last().unwrap().improvement();
    assert!(last > first, "improvement must grow with size");
}

#[test]
fn fig9b_throughput_improvement_in_band() {
    let points = ex::fig9b::data(Q);
    for p in &points {
        let imp = p.improvement();
        assert!(
            (0.15..0.90).contains(&imp),
            "{}B: +{:.0}% out of the paper's 30-60% band (with slack)",
            p.size,
            imp * 100.0
        );
    }
}

#[test]
fn fig10_local_read_speedup_grows_to_about_2x() {
    let points = ex::fig10::data(Q);
    for p in &points {
        assert!(p.speedup() > 1.0, "{}B: clean layout must win", p.size);
    }
    let s128 = points.iter().find(|p| p.size == 128).unwrap().speedup();
    let s8k = points.iter().find(|p| p.size == 8192).unwrap().speedup();
    assert!((1.0..1.4).contains(&s128), "128B speedup {s128:.2}");
    assert!((1.7..2.6).contains(&s8k), "8KB speedup {s8k:.2}");
    assert!(s8k > s128);
}

#[test]
fn fig2_raw_reads_tear_and_sabres_do_not() {
    let o = ex::fig2_race::data(Q);
    assert!(o.raw_torn > 0, "the race never tore a plain read: {o:?}");
    assert_eq!(o.sabre_torn, 0, "SABRe delivered torn data: {o:?}");
    assert!(o.sabre_aborts > 0, "races must surface as aborts: {o:?}");
    assert!(o.sabre_ok > 0, "some SABRes must succeed: {o:?}");
}

#[test]
fn table1_destination_side_wins() {
    let points = ex::table1::data(Q);
    let get = |q| {
        points
            .iter()
            .find(|p| p.quadrant == q)
            .expect("quadrant measured")
            .latency_ns
    };
    use ex::table1::Quadrant::*;
    // Destination OCC beats every source-side mechanism.
    assert!(get(DestOcc) < get(SourceLocking), "vs remote locking");
    assert!(get(DestOcc) < get(SourceOccPerCl), "vs perCL versions");
    assert!(get(DestOcc) < get(SourceOccChecksum), "vs checksums");
    // Destination locking cancels the remote-locking roundtrip.
    assert!(get(DestLocking) < get(SourceLocking) * 0.8);
    // Checksums are the most expensive check by an order of magnitude.
    assert!(get(SourceOccChecksum) > get(SourceOccPerCl) * 3.0);
}

#[test]
fn ablation_depth_follows_littles_law() {
    let sweep = ex::ablations::depth_sweep(Q);
    let lat = |d: u32| sweep.iter().find(|(x, _)| *x == d).unwrap().1;
    // Deeper buffers never hurt, and the Little's-law depth (32) captures
    // almost all of the benefit: 64 buys < 5% more.
    assert!(lat(1) > lat(32), "depth 1 must be slower than 32");
    assert!((lat(32) - lat(64)).abs() / lat(32) < 0.05);
}

#[test]
fn ablation_concurrency_scales_until_saturation() {
    let sweep = ex::ablations::concurrency_sweep(Q);
    let tput = |b: usize| sweep.iter().find(|(x, _)| *x == b).unwrap().1;
    assert!(tput(2) > tput(1) * 1.5, "2 buffers ≈ 2x of 1");
    assert!(tput(16) > tput(4) * 1.5, "16 buffers must keep scaling");
}

#[test]
fn fig_scale_goodput_grows_and_atomicity_stays_cheap() {
    let points = ex::fig_scale::data(Q);
    let get = |nodes: usize, mech: ex::fig_scale::Mechanism| {
        *points
            .iter()
            .find(|p| p.nodes == nodes && p.mech == mech)
            .expect("swept point")
    };
    use ex::fig_scale::Mechanism::*;
    for &nodes in &ex::fig_scale::NODE_COUNTS {
        let raw = get(nodes, Raw);
        let sabre = get(nodes, Sabre);
        // The paper's headline survives scale-out: hardware SABRes track
        // plain reads at every rack size, while the software checks pay
        // their CPU validation on top.
        assert!(
            (sabre.latency_ns - raw.latency_ns) / raw.latency_ns < 0.35,
            "{nodes} nodes: sabre {:.0}ns vs raw {:.0}ns",
            sabre.latency_ns,
            raw.latency_ns
        );
        assert!(get(nodes, PerCl).latency_ns > sabre.latency_ns);
        assert!(get(nodes, Checksum).latency_ns > get(nodes, PerCl).latency_ns);
        // Every reader node makes progress (no placement starves).
        assert!(sabre.min_reader_gbps > 0.0);
    }
    // Aggregate goodput scales with the reader count while reader↔shard
    // pairs stay one mesh hop apart (2 → 6 nodes ≈ 3 independent pairs).
    for mech in [Raw, Sabre] {
        let g2 = get(2, mech).total_gbps;
        let g6 = get(6, mech).total_gbps;
        assert!(
            g6 > g2 * 2.5,
            "{mech:?}: 6-node rack must ≈3x the pair ({g6:.1} vs {g2:.1})"
        );
        // The 8-node mesh adds multi-hop pairs: aggregate stays above the
        // 4-node rack even though per-op latency rises.
        assert!(get(8, mech).total_gbps > get(4, mech).total_gbps);
        assert!(get(8, mech).latency_ns > get(6, mech).latency_ns);
    }
}

#[test]
fn fig_placement_nearest_beats_round_robin_where_geometry_matters() {
    use ex::fig_placement::{FabricKind, Placement, SPLITS};
    let points = ex::fig_placement::data(Q);
    let get = |f: FabricKind, p: Placement, s: (usize, usize)| {
        *points
            .iter()
            .find(|x| x.fabric == f && x.placement == p && x.split == s)
            .expect("swept point")
    };
    for &fabric in &FabricKind::ALL {
        let mut rr_hops = 0.0;
        let mut near_hops = 0.0;
        for &split in &SPLITS {
            let rr = get(fabric, Placement::RoundRobin, split);
            let near = get(fabric, Placement::Nearest, split);
            // NearestShard never routes a reader's packets farther than
            // round-robin does (the placement_props invariant, observed
            // end to end), and never costs goodput.
            assert!(
                near.reader_hops <= rr.reader_hops + 1e-9,
                "{fabric:?} {split:?}: nearest {:.3} hops vs rr {:.3}",
                near.reader_hops,
                rr.reader_hops
            );
            assert!(
                near.total_gbps >= rr.total_gbps * 0.999,
                "{fabric:?} {split:?}: nearest {:.2} GB/s vs rr {:.2}",
                near.total_gbps,
                rr.total_gbps
            );
            // With a single shard the policies have nothing to choose.
            if split.0 == 1 {
                assert_eq!(near.reader_hops, rr.reader_hops);
                assert_eq!(near.latency_ns, rr.latency_ns);
            }
            rr_hops += rr.reader_hops;
            near_hops += near.reader_hops;
        }
        // The acceptance bar: on the geometry-sensitive fabrics — the
        // multi-hop 8-node mesh and the 4:1 oversubscribed fat tree —
        // nearest-shard placement achieves a strictly lower mean hop
        // count than round-robin.
        if matches!(fabric, FabricKind::Mesh | FabricKind::FatTree4) {
            assert!(
                near_hops < rr_hops,
                "{fabric:?}: nearest ({near_hops:.3}) must beat round-robin ({rr_hops:.3})"
            );
        }
    }
    // Oversubscription hurts round-robin's cross-leaf traffic: the 4:1
    // fat tree's mixed-leaf split is slower than the 2:1 tree's, while
    // leaf-local nearest placement is immune to the uplink entirely.
    let mixed = (2usize, 3usize);
    assert!(
        get(FabricKind::FatTree4, Placement::RoundRobin, mixed).latency_ns
            > get(FabricKind::FatTree2, Placement::RoundRobin, mixed).latency_ns
    );
    assert_eq!(
        get(FabricKind::FatTree4, Placement::Nearest, mixed).reader_hops,
        1.0,
        "nearest keeps every reader on its shard's leaf"
    );
}

#[test]
fn fig_tail_p99_is_monotone_in_offered_load() {
    use ex::fig_tail::{Skew, LOADS};
    let points = ex::fig_tail::data(Q);
    for p in &points {
        assert!(p.p50_ns <= p.p99_ns && p.p99_ns <= p.p999_ns, "{p:?}");
    }
    for mech in ex::fig_scale::Mechanism::ALL {
        for skew in Skew::ALL {
            let curve: Vec<&ex::fig_tail::Point> = LOADS
                .iter()
                .map(|&l| {
                    points
                        .iter()
                        .find(|p| p.mech == mech && p.skew == skew && p.load == l)
                        .expect("every (mech, skew, load) point present")
                })
                .collect();
            // The tentpole acceptance bar: more offered load never shrinks
            // the tail, and queue buildup grows with it.
            for w in curve.windows(2) {
                assert!(
                    w[0].p99_ns <= w[1].p99_ns,
                    "{mech:?}/{skew:?}: p99 fell from {} to {} as load rose {} -> {}",
                    w[0].p99_ns,
                    w[1].p99_ns,
                    w[0].load,
                    w[1].load
                );
                assert!(
                    w[0].queued <= w[1].queued,
                    "{mech:?}/{skew:?}: queueing fell as load rose"
                );
            }
            // Saturation is visible: the heaviest load queues somewhere.
            assert!(curve[LOADS.len() - 1].queued > 0, "{mech:?}/{skew:?}");
        }
    }
}

#[test]
fn fig_tail_mix_rows_are_live_and_ordered() {
    // The read/write-mix sweep ("tail under conflict"): every fraction
    // completes operations and reports ordered percentiles.
    let points = ex::fig_tail::mix_data(Q);
    assert_eq!(points.len(), ex::fig_tail::MIX_FRACTIONS.len());
    for (fraction, p) in &points {
        assert!(p.ops > 0, "mix {fraction}: no ops");
        assert!(
            p.p50_ns <= p.p99_ns && p.p99_ns <= p.p999_ns,
            "mix {fraction}: {p:?}"
        );
    }
}

#[test]
fn fig_failover_adaptive_beats_static_under_a_crash() {
    use ex::fig_failover::Policy;
    let points = ex::fig_failover::data(Q);
    for mech in ex::fig_scale::Mechanism::ALL {
        let get = |policy: Policy| {
            points
                .iter()
                .find(|p| p.mech == mech && p.policy == policy)
                .expect("every (mechanism, policy) point present")
        };
        let (stat, adap) = (get(Policy::Static), get(Policy::Adaptive));
        // The crash must bite both policies...
        assert!(stat.failovers > 0, "{mech:?}: static never failed over");
        assert!(adap.failovers > 0, "{mech:?}: adaptive never failed over");
        // ...but only adaptive remembers: it re-binds away from the dead
        // replica (and probes back), so it completes more operations at a
        // lower p99 than static round-robin, which re-eats the timeout on
        // every rotation through the outage.
        assert_eq!(stat.migrations, 0, "{mech:?}: static must not migrate");
        assert!(adap.migrations > 0, "{mech:?}: adaptive never migrated");
        assert!(
            adap.ops > stat.ops,
            "{mech:?}: adaptive completed {} ops vs static's {}",
            adap.ops,
            stat.ops
        );
        assert!(
            adap.p99_ns < stat.p99_ns,
            "{mech:?}: adaptive p99 {} ns vs static's {} ns",
            adap.p99_ns,
            stat.p99_ns
        );
    }
}

#[test]
fn fig_protocols_wait_free_never_aborts_and_ohram_undercuts_sabre_hops() {
    use ex::fig_protocols::Protocol;
    let points = ex::fig_protocols::data(Q);
    let get = |proto: Protocol, skew: ex::fig_tail::Skew, load: f64| {
        points
            .iter()
            .find(|p| p.proto == proto && p.skew == skew && p.load == load)
            .expect("every (protocol, skew, load) point present")
    };
    for skew in ex::fig_tail::Skew::ALL {
        for load in ex::fig_protocols::LOADS {
            let sabre = get(Protocol::Sabre, skew, load);
            let wf = get(Protocol::WfRegister, skew, load);
            let ohram = get(Protocol::OhRam, skew, load);
            // The wait-free register's headline: zero aborts by
            // construction, at every load and skew, under live writers.
            assert_eq!(
                wf.retries, 0,
                "{skew:?}@{load}: the wait-free register retried"
            );
            // Oh-RAM's one-and-a-half rounds also never abort (the
            // server-side capture restarts internally instead).
            assert_eq!(ohram.retries, 0, "{skew:?}@{load}: Oh-RAM retried");
            // Oh-RAM's headline: strictly fewer fabric hops per op than
            // the two-round SABRe (one request + block stream + confirm
            // vs per-block request streaming plus retries).
            assert!(
                ohram.hops_per_op < sabre.hops_per_op,
                "{skew:?}@{load}: Oh-RAM {:.2} hops/op vs SABRe {:.2}",
                ohram.hops_per_op,
                sabre.hops_per_op
            );
            // Both alternatives stay live under racing writers.
            assert!(wf.ops > 0 && ohram.ops > 0);
        }
    }
    // The abort-based baseline does retry somewhere in this sweep — the
    // zero columns above are a property of the protocol, not an idle rack.
    assert!(
        points
            .iter()
            .filter(|p| p.proto == Protocol::Sabre)
            .any(|p| p.retries > 0),
        "SABRe never retried: the racing writers are not racing"
    );
}

#[test]
fn fig_recovery_guard_trades_availability_for_freshness() {
    use ex::fig_recovery::Mode;
    let points = ex::fig_recovery::data(Q);
    let get = |mode: Mode| {
        points
            .iter()
            .find(|p| p.mode == mode)
            .expect("every guard mode present")
    };
    let (base, refuse, stale) = (
        get(Mode::NoOutage),
        get(Mode::Refuse),
        get(Mode::ServeStale),
    );
    // The fault-free baseline is clean: no recovery activity at all.
    assert_eq!(base.recovery, Default::default(), "baseline not clean");
    assert_eq!(base.migrations, 0, "baseline readers migrated");
    // Both outage rows recover: the restored sibling sites bounce off
    // each other's guards, pull the surviving replica's log, and replay
    // a real missed range inside a nonzero staleness window.
    for p in [refuse, stale] {
        let r = p.recovery;
        assert!(r.catch_up_pulls >= 2, "{:?}: {r:?}", p.mode);
        assert!(
            r.catch_up_refused >= 2,
            "{:?}: siblings never bounced",
            p.mode
        );
        assert!(r.replays_applied > 50, "{:?}: {r:?}", p.mode);
        assert!(r.catch_up_ns > 0, "{:?}: no staleness window", p.mode);
        assert!(p.migrations > 0, "{:?}: readers never re-placed", p.mode);
        // The outage costs availability against the baseline either way.
        assert!(p.ops < base.ops, "{:?}: outage was free", p.mode);
    }
    // The guard split: refuse mode turns readers away and serves nothing
    // stale; serve-stale mode does the opposite — and the reads it keeps
    // serving buy back availability.
    assert!(refuse.recovery.stale_refusals > 0, "{:?}", refuse.recovery);
    assert_eq!(refuse.recovery.stale_served, 0, "{:?}", refuse.recovery);
    assert_eq!(stale.recovery.stale_refusals, 0, "{:?}", stale.recovery);
    assert!(stale.recovery.stale_served > 0, "{:?}", stale.recovery);
    assert!(
        stale.ops > refuse.ops,
        "serve-stale {} ops vs refuse {} ops",
        stale.ops,
        refuse.ops
    );
}

#[test]
fn fig_datacenter_spine_is_costly_and_nearest_placement_avoids_it() {
    use ex::fig_datacenter::Placement;
    let points = ex::fig_datacenter::data(Q);
    for &racks in &ex::fig_datacenter::RACK_COUNTS {
        for mech in ex::fig_datacenter::Mechanism::ALL {
            let get = |placement: Placement| {
                points
                    .iter()
                    .find(|p| p.racks == racks && p.mech == mech && p.placement == placement)
                    .expect("every (racks, mechanism, placement) point present")
            };
            let (rr, near) = (get(Placement::RoundRobin), get(Placement::Nearest));
            // Cross-spine reads are strictly slower than rack-local ones:
            // round-robin drags most reads over the 350 ns spine (twice —
            // request and reply) while nearest-shard placement keeps every
            // reader leaf-local, so the gap is a multiple, not a margin.
            assert!(
                rr.latency_ns > 2.0 * near.latency_ns,
                "{racks} racks {mech:?}: round-robin {:.0} ns not a multiple \
                 of nearest {:.0} ns",
                rr.latency_ns,
                near.latency_ns
            );
            assert!(
                rr.p99_ns > near.p99_ns,
                "{racks} racks {mech:?}: p99 inversion ({} vs {})",
                rr.p99_ns,
                near.p99_ns
            );
            // NearestShard reduces spine crossings vs round-robin at every
            // rack count — all the way to zero, with one store per leaf.
            assert!(
                rr.spine_share > 0.0,
                "{racks} racks {mech:?}: round-robin never crossed the spine"
            );
            assert!(
                near.spine_share < rr.spine_share,
                "{racks} racks {mech:?}: nearest spine share {:.2} not below \
                 round-robin's {:.2}",
                near.spine_share,
                rr.spine_share
            );
            assert_eq!(
                near.spine_share, 0.0,
                "{racks} racks {mech:?}: a leaf-local reader crossed the spine"
            );
        }
    }
    // Round-robin's cross-spine share grows with the rack count (the
    // random-target floor is (racks-1)/racks), for both mechanisms.
    for mech in ex::fig_datacenter::Mechanism::ALL {
        let shares: Vec<f64> = ex::fig_datacenter::RACK_COUNTS
            .iter()
            .map(|&racks| {
                points
                    .iter()
                    .find(|p| {
                        p.racks == racks
                            && p.mech == mech
                            && p.placement == ex::fig_datacenter::Placement::RoundRobin
                    })
                    .expect("round-robin point present")
                    .spine_share
            })
            .collect();
        assert!(
            shares.windows(2).all(|w| w[0] < w[1]),
            "{mech:?}: round-robin spine share not growing with racks: {shares:?}"
        );
    }
}
