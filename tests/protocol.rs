//! Protocol-level integration tests across the full stack: flow control,
//! parking, one-sided writes, RPC writes, remote CAS locking, and the
//! page-boundary stall path.

use std::cell::RefCell;
use std::rc::Rc;

use sabres::prelude::*;

/// A minimal workload issuing one scripted operation, for protocol probes.
struct OneShot {
    op: OpKind,
    dst: u8,
    remote: Addr,
    local: Addr,
    size: u32,
    done: Rc<RefCell<Option<CqEntry>>>,
}

impl Workload for OneShot {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        if self.op == OpKind::Write {
            api.issue_write(self.dst, self.remote, self.local, self.size);
        } else {
            api.issue(self.op, self.dst, self.remote, self.local, self.size, 0);
        }
    }
    fn on_completion(&mut self, _api: &mut CoreApi<'_>, cq: CqEntry) {
        *self.done.borrow_mut() = Some(cq);
    }
}

#[test]
fn one_sided_write_lands_with_invalidations() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    let payload: Vec<u8> = (0..200u8).collect();
    let local = Addr::new(1 << 20);
    cluster.node_memory_mut(0).write(local, &payload);
    let done = Rc::new(RefCell::new(None));
    cluster.add_workload(
        0,
        0,
        Box::new(OneShot {
            op: OpKind::Write,
            dst: 1,
            remote: Addr::new(4096),
            local,
            size: 200,
            done: Rc::clone(&done),
        }),
    );
    cluster.run_for(Time::from_us(5));
    let cq = done.borrow().expect("write completed");
    assert!(cq.success);
    assert_eq!(cq.op, OpKind::Write);
    assert_eq!(
        cluster.node_memory(1).read_vec(Addr::new(4096), 200),
        payload,
        "payload must land at the destination"
    );
    // The write epochs advanced at the destination (4 blocks touched).
    assert!(cluster.node_memory(1).epoch(Addr::new(4096).block()) > 0);
}

#[test]
fn remote_cas_lock_contention_is_exposed() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    // Version word pre-locked (odd): the CAS must fail and the CQ must say so.
    cluster.node_memory_mut(1).write_u64(Addr::new(0), 3);
    let done = Rc::new(RefCell::new(None));
    cluster.add_workload(
        0,
        0,
        Box::new(OneShot {
            op: OpKind::LockCas,
            dst: 1,
            remote: Addr::new(0),
            local: Addr::new(1 << 20),
            size: 8,
            done: Rc::clone(&done),
        }),
    );
    cluster.run_for(Time::from_us(5));
    let cq = done.borrow().expect("CAS completed");
    assert!(!cq.success, "CAS on a held lock must report contention");
    // The word is untouched.
    assert_eq!(cluster.node_memory(1).read_u64(Addr::new(0)), 3);
}

#[test]
fn att_overflow_parks_and_everything_still_completes() {
    let mut cfg = ClusterConfig::default();
    cfg.lightsabres.stream_buffers = 2; // tiny ATT forces parking
    let mut cluster = Cluster::new(cfg);
    let store = ObjectStore::new(1, Addr::new(0), StoreLayout::Clean, 112, 64);
    store.init(cluster.node_memory_mut(1));
    for core in 0..8 {
        cluster.add_workload(
            0,
            core,
            Box::new(AsyncReader::new(
                1,
                store.object_addrs(),
                128,
                ReadMechanism::Sabre,
                8,
            )),
        );
    }
    cluster.run_for(Time::from_us(100));
    let parked: u64 = (0..4).map(|p| cluster.r2p2_stats(1, p).sabres_parked).sum();
    assert!(parked > 0, "2-entry ATTs under 64 outstanding must park");
    // Flow control: every registered SABRe completed (none stuck).
    for p in 0..4 {
        let e = cluster.engine_stats(1, p);
        let registered_started = cluster.r2p2_stats(1, p).sabres_registered;
        assert!(
            e.completed_ok + e.completed_failed + 16 >= registered_started,
            "pipe {p}: {} registered vs {} completed",
            registered_started,
            e.completed_ok + e.completed_failed
        );
    }
    assert!(
        cluster.node_metrics(0).ops > 100,
        "progress despite parking"
    );
}

#[test]
fn rpc_write_path_applies_updates_at_the_owner() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    let store = ObjectStore::new(1, Addr::new(0), StoreLayout::Clean, 480, 16);
    store.init(cluster.node_memory_mut(1));
    let kv = KvStore::new(store.clone(), 1000);
    cluster.add_workload(1, 0, Box::new(RpcWriteServer::new(kv)));
    let kv = KvStore::new(store.clone(), 1000);
    cluster.add_workload(0, 0, Box::new(RpcWriter::iterations(kv, 0, Time::ZERO, 20)));
    cluster.run_for(Time::from_us(100));
    let m = cluster.metrics(0, 0);
    assert_eq!(m.ops, 20, "all RPC writes acknowledged");
    // Every object in the store must still validate (odd/even protocol held),
    // and at least one must have advanced past its initial version.
    let mut advanced = 0;
    for i in 0..16 {
        let image = cluster
            .node_memory(1)
            .read_vec(store.object_addr(i), store.slot_bytes() as usize);
        let v = CleanLayout::version_of(&image);
        assert!(!v.is_locked(), "object {i} left locked");
        let payload = CleanLayout::payload_of(&image, 480);
        let seq = verify_payload(i, payload).expect("owner-applied updates are never torn");
        if seq > 0 {
            advanced += 1;
            // Two version increments per applied update.
            assert!(v.raw() >= 2, "updated object {i} kept version {}", v.raw());
            assert_eq!(v.raw() % 2, 0);
        }
    }
    assert!(advanced > 0, "some objects must have been updated");
}

#[test]
fn sabre_across_page_boundary_completes() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    // An object straddling the 2 MB superpage boundary: the engine stalls
    // issue at the crossing inside the window, then finishes normally.
    let page = sabres::mem::PAGE_BYTES as u64;
    let base = Addr::new(page - 128);
    let payload = vec![7u8; 480];
    {
        let mem = cluster.node_memory_mut(1);
        CleanLayout::init(mem, base, &payload);
    }
    let done = Rc::new(RefCell::new(None));
    cluster.add_workload(
        0,
        0,
        Box::new(OneShot {
            op: OpKind::Sabre,
            dst: 1,
            remote: base,
            local: Addr::new(1 << 20),
            size: CleanLayout::object_bytes(480) as u32,
            done: Rc::clone(&done),
        }),
    );
    cluster.run_for(Time::from_us(10));
    let cq = done.borrow().expect("SABRe completed");
    assert!(cq.success);
    let engines: u64 = (0..4).map(|p| cluster.engine_stats(1, p).page_stalls).sum();
    assert!(
        engines > 0,
        "the crossing must have stalled inside the window"
    );
    let image = cluster
        .node_memory(0)
        .read_vec(Addr::new(1 << 20), CleanLayout::object_bytes(480));
    assert_eq!(CleanLayout::payload_of(&image, 480), &payload[..]);
}

#[test]
fn source_locking_readers_contend_but_progress() {
    let mut cluster = Cluster::new(ClusterConfig::default());
    let store = ObjectStore::new(1, Addr::new(0), StoreLayout::Clean, 480, 2);
    store.init(cluster.node_memory_mut(1));
    // Two DrTM-style readers hammering the same two objects: CAS contention
    // must appear as retries, yet both make progress and no lock is leaked.
    for core in 0..2 {
        cluster.add_workload(
            0,
            core,
            Box::new(SourceLockingReader::iterations(
                1,
                store.object_addrs(),
                480,
                150,
            )),
        );
    }
    cluster.run_for(Time::from_us(500));
    let m = cluster.node_metrics(0);
    assert_eq!(m.ops, 300, "both readers must finish their 150 reads");
    assert!(m.retries > 0, "no CAS contention observed");
    // Both objects end unlocked (even versions): no leaked locks once the
    // final asynchronous unlocks drain.
    for i in 0..2 {
        let v = VersionWord::new(cluster.node_memory(1).read_u64(store.object_addr(i)));
        assert!(!v.is_locked(), "object {i} left locked");
    }
}

#[test]
fn deterministic_replay_bitwise_identical() {
    // Same seed, same history — the foundation every experiment rests on.
    let run = || {
        let mut cluster = Cluster::new(ClusterConfig::default());
        let store = ObjectStore::new(1, Addr::new(0), StoreLayout::Clean, 480, 16);
        store.init(cluster.node_memory_mut(1));
        for core in 0..4 {
            cluster.add_workload(
                0,
                core,
                Box::new(
                    SyncReader::endless(1, store.object_addrs(), 480, ReadMechanism::Sabre)
                        .with_wire(store.slot_bytes() as u32),
                ),
            );
        }
        cluster.add_workload(
            1,
            0,
            Box::new(Writer::new(
                store.object_entries(),
                480,
                WriterLayout::Clean,
                Time::ZERO,
            )),
        );
        cluster.run_for(Time::from_us(50));
        let m = cluster.node_metrics(0);
        (m.ops, m.retries, m.bytes, cluster.engine_stats(1, 0))
    };
    assert_eq!(run(), run(), "identical seeds must replay identically");
}
