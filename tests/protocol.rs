//! Protocol-level integration tests across the full stack: flow control,
//! parking, one-sided writes, RPC writes, remote CAS locking, and the
//! page-boundary stall path — all declared through the Scenario API, with
//! post-run state inspected via [`RunReport::cluster`].

use std::sync::{Arc, Mutex};

use sabres::prelude::*;

/// A minimal workload issuing one scripted operation, for protocol probes.
struct OneShot {
    op: OpKind,
    dst: u8,
    remote: Addr,
    local: Addr,
    size: u32,
    done: Arc<Mutex<Option<CqEntry>>>,
}

impl Workload for OneShot {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        if self.op == OpKind::Write {
            api.issue_write(self.dst, self.remote, self.local, self.size);
        } else {
            api.issue(self.op, self.dst, self.remote, self.local, self.size, 0);
        }
    }
    fn on_completion(&mut self, _api: &mut CoreApi<'_>, cq: CqEntry) {
        *self.done.lock().expect("done poisoned") = Some(cq);
    }
}

#[test]
fn one_sided_write_lands_with_invalidations() {
    let payload: Vec<u8> = (0..200u8).collect();
    let local = Addr::new(1 << 20);
    let done = Arc::new(Mutex::new(None));
    let seen = Arc::clone(&done);
    let init = payload.clone();
    let report = ScenarioBuilder::new()
        .prepare(move |cluster| {
            cluster.node_memory_mut(0).write(local, &init);
            Vec::new()
        })
        .workload(
            0,
            0,
            Box::new(OneShot {
                op: OpKind::Write,
                dst: 1,
                remote: Addr::new(4096),
                local,
                size: 200,
                done,
            }),
        )
        .run_for(Time::from_us(5));
    let cq = seen
        .lock()
        .expect("done poisoned")
        .expect("write completed");
    assert!(cq.success);
    assert_eq!(cq.op, OpKind::Write);
    assert_eq!(
        report
            .cluster()
            .node_memory(1)
            .read_vec(Addr::new(4096), 200),
        payload,
        "payload must land at the destination"
    );
    // The write epochs advanced at the destination (4 blocks touched).
    assert!(
        report
            .cluster()
            .node_memory(1)
            .epoch(Addr::new(4096).block())
            > 0
    );
}

#[test]
fn remote_cas_lock_contention_is_exposed() {
    let done = Arc::new(Mutex::new(None));
    let seen = Arc::clone(&done);
    let report = ScenarioBuilder::new()
        // Version word pre-locked (odd): the CAS must fail and the CQ must
        // say so.
        .prepare(|cluster| {
            cluster.node_memory_mut(1).write_u64(Addr::new(0), 3);
            Vec::new()
        })
        .workload(
            0,
            0,
            Box::new(OneShot {
                op: OpKind::LockCas,
                dst: 1,
                remote: Addr::new(0),
                local: Addr::new(1 << 20),
                size: 8,
                done,
            }),
        )
        .run_for(Time::from_us(5));
    let cq = seen.lock().expect("done poisoned").expect("CAS completed");
    assert!(!cq.success, "CAS on a held lock must report contention");
    // The word is untouched.
    assert_eq!(report.cluster().node_memory(1).read_u64(Addr::new(0)), 3);
}

#[test]
fn att_overflow_parks_and_everything_still_completes() {
    let (scenario, store) = ScenarioBuilder::new()
        .configure(|cfg| cfg.lightsabres.stream_buffers = 2) // tiny ATT forces parking
        .store(1, StoreLayout::Clean, 112, Some(64));
    let report = scenario
        .readers_spec(
            0,
            0..8,
            spec()
                .store(1)
                .payload(128)
                .mechanism(ReadMechanism::Sabre)
                .window(8)
                .objects(store.object_addrs()),
        )
        .run_for(Time::from_us(100));
    let parked = report.r2p2_totals(1).sabres_parked;
    assert!(parked > 0, "2-entry ATTs under 64 outstanding must park");
    // Flow control: every registered SABRe completed (none stuck).
    for p in 0..4 {
        let e = report.engine(1, p);
        let registered_started = report.r2p2(1, p).sabres_registered;
        assert!(
            e.completed_ok + e.completed_failed + 16 >= registered_started,
            "pipe {p}: {} registered vs {} completed",
            registered_started,
            e.completed_ok + e.completed_failed
        );
    }
    assert!(report.node(0).ops > 100, "progress despite parking");
}

#[test]
fn rpc_write_path_applies_updates_at_the_owner() {
    let (scenario, store) = ScenarioBuilder::new().store(1, StoreLayout::Clean, 480, Some(16));
    let server_store = store.clone();
    let writer_store = store.clone();
    let report = scenario
        .reader(1, 0, move |_| {
            Box::new(RpcWriteServer::new(KvStore::new(server_store, 1000)))
        })
        .reader(0, 0, move |_| {
            let kv = KvStore::new(writer_store, 1000);
            Box::new(RpcWriter::iterations(kv, 0, Time::ZERO, 20))
        })
        .run_for(Time::from_us(100));
    assert_eq!(report.core(0, 0).ops, 20, "all RPC writes acknowledged");
    // Every object in the store must still validate (odd/even protocol held),
    // and at least one must have advanced past its initial version.
    let mut advanced = 0;
    for i in 0..16 {
        let image = report
            .cluster()
            .node_memory(1)
            .read_vec(store.object_addr(i), store.slot_bytes() as usize);
        let v = CleanLayout::version_of(&image);
        assert!(!v.is_locked(), "object {i} left locked");
        let payload = CleanLayout::payload_of(&image, 480);
        let seq = verify_payload(i, payload).expect("owner-applied updates are never torn");
        if seq > 0 {
            advanced += 1;
            // Two version increments per applied update.
            assert!(v.raw() >= 2, "updated object {i} kept version {}", v.raw());
            assert_eq!(v.raw() % 2, 0);
        }
    }
    assert!(advanced > 0, "some objects must have been updated");
}

#[test]
fn sabre_across_page_boundary_completes() {
    // An object straddling the 2 MB superpage boundary: the engine stalls
    // issue at the crossing inside the window, then finishes normally.
    let page = sabres::mem::PAGE_BYTES as u64;
    let base = Addr::new(page - 128);
    let payload = vec![7u8; 480];
    let init = payload.clone();
    let done = Arc::new(Mutex::new(None));
    let seen = Arc::clone(&done);
    let report = ScenarioBuilder::new()
        .prepare(move |cluster| {
            CleanLayout::init(cluster.node_memory_mut(1), base, &init);
            Vec::new()
        })
        .workload(
            0,
            0,
            Box::new(OneShot {
                op: OpKind::Sabre,
                dst: 1,
                remote: base,
                local: Addr::new(1 << 20),
                size: CleanLayout::object_bytes(480) as u32,
                done,
            }),
        )
        .run_for(Time::from_us(10));
    let cq = seen
        .lock()
        .expect("done poisoned")
        .expect("SABRe completed");
    assert!(cq.success);
    assert!(
        report.engine_totals(1).page_stalls > 0,
        "the crossing must have stalled inside the window"
    );
    let image = report
        .cluster()
        .node_memory(0)
        .read_vec(Addr::new(1 << 20), CleanLayout::object_bytes(480));
    assert_eq!(CleanLayout::payload_of(&image, 480), &payload[..]);
}

#[test]
fn source_locking_readers_contend_but_progress() {
    let (scenario, store) = ScenarioBuilder::new().store(1, StoreLayout::Clean, 480, Some(2));
    // Two DrTM-style readers hammering the same two objects: CAS contention
    // must appear as retries, yet both make progress and no lock is leaked.
    let report = scenario
        .readers_spec(
            0,
            0..2,
            spec()
                .store(1)
                .payload(480)
                .source_locking()
                .iterations(150),
        )
        .run_for(Time::from_us(500));
    let m = report.node(0);
    assert_eq!(m.ops, 300, "both readers must finish their 150 reads");
    assert!(m.retries > 0, "no CAS contention observed");
    // Both objects end unlocked (even versions): no leaked locks once the
    // final asynchronous unlocks drain.
    for i in 0..2 {
        let v = VersionWord::new(
            report
                .cluster()
                .node_memory(1)
                .read_u64(store.object_addr(i)),
        );
        assert!(!v.is_locked(), "object {i} left locked");
    }
}

#[test]
fn deterministic_replay_bitwise_identical() {
    // Same seed, same history — the foundation every experiment rests on.
    let run = || {
        let (scenario, store) = ScenarioBuilder::new().store(1, StoreLayout::Clean, 480, Some(16));
        let wire = store.slot_bytes() as u32;
        let entries = store.object_entries();
        let report = scenario
            .readers_spec(
                0,
                0..4,
                spec()
                    .store(1)
                    .payload(480)
                    .mechanism(ReadMechanism::Sabre)
                    .wire(wire),
            )
            .workload(
                1,
                0,
                Box::new(Writer::new(entries, 480, WriterLayout::Clean, Time::ZERO)),
            )
            .run_for(Time::from_us(50));
        let m = report.node(0);
        (m.ops, m.retries, m.bytes, report.engine(1, 0))
    };
    assert_eq!(run(), run(), "identical seeds must replay identically");
}
