//! The invariant-first torture harness.
//!
//! Instead of asserting point facts per scenario, this suite names the
//! system's invariants once — as small, composable checkers — and runs
//! **every** checker against **every** fabric quadrant, from one mesh rack
//! up to a 256-node four-rack datacenter:
//!
//! * **conservation** — at quiescence, every packet the fabric accepted
//!   was delivered exactly once or dropped by the fault plan
//!   (`sent == delivered + dropped`), and the streaming [`HopStats`]
//!   ledger agrees with it: the per-node counters merge exactly to the
//!   whole-fabric totals, spine crossings and queueing never exceed the
//!   packets that could have paid them;
//! * **bit-identity** — the quadrant's full observable fingerprint (every
//!   read outcome, every sequence number, every completion timestamp
//!   folded into an order-insensitive digest, plus the packet and hop
//!   ledgers) replays identically at shards {1, 2, 8} × threads
//!   {1, 2, 8};
//! * **atomicity** — a read served as atomic is never torn
//!   ([`verify_payload`] on every completion), and a raw-read control
//!   proves the same schedules do tear without a mechanism;
//! * **freshness** — versions never run backwards under re-read, and no
//!   reader ever observes a sequence number newer than what the writer
//!   actually published (the final store image is the ceiling);
//! * **abort-freedom** — mechanisms that promise completion without
//!   retries (raw reads here; the wait-free register is pinned in
//!   `fig_protocols`' shape tests) keep that promise, and the harness's
//!   own ledger agrees with the metrics layer's op/retry counters.
//!
//! The quadrants put the store and its racing writers at staged distances:
//! same leaf, cross-leaf, cross-rack over the 350 ns spine — so the
//! invariants are exercised across every hop class the datacenter
//! topology has, while the 256-node quadrant leaves 250 nodes idle and
//! thereby also tortures the O(active-nodes) window scheduler.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use sabres::prelude::*;
use sabres::sim::HopStats;

/// Object payload: four cache blocks, so an unprotected racing read has
/// real room to tear.
const PAYLOAD: u32 = 256;

/// Objects in the quadrant's store (partitioned CREW among the writers).
const OBJECTS: u64 = 24;

/// Simulated duration of one quadrant run — generous enough for every
/// finite reader to drain (conservation is a quiescence invariant), with
/// the O(active-nodes) scheduler keeping the post-drain tail cheap.
const DUR_US: u64 = 400;

// ---------------------------------------------------------------------------
// The observation ledger
// ---------------------------------------------------------------------------

/// Everything the torture readers observed, merged commutatively across
/// cores (worker threads may interleave ledger updates in any order, so
/// every field is an order-insensitive reduction: sums, maxes).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Ledger {
    /// Reads whose payload matched one committed writer snapshot.
    verified: u64,
    /// Reads delivered whole-but-inconsistent (only the raw control may
    /// count these).
    torn: u64,
    /// Completions the mechanism rejected (SABRe version aborts).
    aborts: u64,
    /// Re-reads of an object that observed an *older* sequence number
    /// than the same reader saw before — freshness running backwards.
    time_travel: u64,
    /// Highest sequence number served as atomic, per object id.
    max_seq: HashMap<u64, u64>,
    /// Order-insensitive digest: each completion's
    /// `mix(node, object, seq, completion_ns)` is wrapping-added, so any
    /// behavioral divergence between two runs moves the sum while thread
    /// scheduling cannot.
    digest: u64,
}

/// FNV-style mix of one completion event.
fn mix(a: u64, b: u64, c: u64, d: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for v in [a, b, c, d] {
        h ^= v;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// A reader that cross-checks every completion against the writer
/// pattern and folds the observation into the shared [`Ledger`].
struct TortureReader {
    mech: ReadMechanism,
    store: ObjectStore,
    ledger: Arc<Mutex<Ledger>>,
    /// This reader's last verified sequence number per object (the
    /// monotonicity baseline — synchronous reads complete in issue
    /// order, so a decrease is genuine time travel).
    last_seq: HashMap<u64, u64>,
    /// Successful reads left before the reader falls silent — finite so
    /// the run reaches quiescence and the conservation ledger balances.
    remaining: u64,
    cur_obj: u64,
    t0: Time,
}

impl TortureReader {
    fn new(
        mech: ReadMechanism,
        store: ObjectStore,
        ledger: Arc<Mutex<Ledger>>,
        reads: u64,
    ) -> Self {
        TortureReader {
            mech,
            store,
            ledger,
            last_seq: HashMap::new(),
            remaining: reads,
            cur_obj: 0,
            t0: Time::ZERO,
        }
    }

    fn buf(&self, api: &CoreApi<'_>) -> Addr {
        Addr::new(api.config().memory_bytes as u64 / 2 + api.core() as u64 * 64 * 1024)
    }

    fn issue(&mut self, api: &mut CoreApi<'_>) {
        self.cur_obj = api.rng().below(self.store.n_objects());
        let addr = self.store.object_addr(self.cur_obj);
        let buf = self.buf(api);
        let wire = self.store.wire_bytes() as u32;
        self.t0 = api.now();
        api.issue(self.mech.op(), self.store.node(), addr, buf, wire, 0);
    }
}

impl Workload for TortureReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.issue(api);
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        let now = api.now();
        let node = api.node() as u64;
        let mut observed_seq = u64::MAX;
        if cq.success {
            let image = api.read_local(self.buf(api), self.store.wire_bytes() as usize);
            let payload = CleanLayout::payload_of(&image, PAYLOAD as usize);
            let mut ledger = self.ledger.lock().expect("ledger poisoned");
            match verify_payload(self.cur_obj, payload) {
                Some(seq) => {
                    observed_seq = seq;
                    ledger.verified += 1;
                    let ceiling = ledger.max_seq.entry(self.cur_obj).or_insert(0);
                    *ceiling = (*ceiling).max(seq);
                    let last = self.last_seq.entry(self.cur_obj).or_insert(0);
                    if seq < *last {
                        ledger.time_travel += 1;
                    }
                    *last = seq;
                    drop(ledger);
                    api.metrics().record_success(PAYLOAD as u64, now - self.t0);
                }
                None => ledger.torn += 1,
            }
            self.remaining -= 1;
        } else {
            self.ledger.lock().expect("ledger poisoned").aborts += 1;
            api.metrics().record_retry();
        }
        let event = mix(node, self.cur_obj, observed_seq, now.as_ns() as u64);
        let mut ledger = self.ledger.lock().expect("ledger poisoned");
        ledger.digest = ledger.digest.wrapping_add(event);
        drop(ledger);
        if self.remaining > 0 {
            self.issue(api);
        }
    }
}

// ---------------------------------------------------------------------------
// Quadrants
// ---------------------------------------------------------------------------

/// The fabric tier a quadrant runs on.
#[derive(Debug, Clone, Copy)]
enum FabricKind {
    /// The seed's all-to-all single-hop mesh.
    Mesh,
    /// One fat-tree rack: `radix` nodes per leaf, oversubscribed uplinks.
    FatTree { radix: u8, oversub: u8 },
    /// The two-level datacenter: racks of `radix`² nodes over a spine.
    Datacenter { racks: u8, radix: u8, oversub: u8 },
}

/// One torture quadrant: a fabric tier plus actor placement staged across
/// its hop classes.
struct Quadrant {
    name: &'static str,
    nodes: usize,
    fabric: FabricKind,
    /// The store node (its cores run the racing CREW writers).
    store: u8,
    /// Reader nodes (core 0 each), placed same-leaf / cross-leaf /
    /// cross-rack where the fabric has those distances.
    readers: &'static [usize],
    writers: usize,
    /// Successful reads per reader (finite, so the run drains).
    reads: u64,
    /// Writer think time in ns — tuned to the quadrant's hop class: tight
    /// inside a rack (fast reads need frequent version bumps to race),
    /// relaxed across the spine (a multi-microsecond cross-rack SABRe
    /// must still make progress between bumps).
    think_ns: u64,
}

/// The four quadrants every checker runs against.
const QUADRANTS: [Quadrant; 4] = [
    Quadrant {
        name: "mesh_rack",
        nodes: 8,
        fabric: FabricKind::Mesh,
        store: 1,
        readers: &[0, 2, 5],
        writers: 4,
        reads: 80,
        think_ns: 400,
    },
    Quadrant {
        // 16 nodes, 4 leaves: readers same-leaf (6), cross-leaf (0, 12).
        name: "fat_tree_rack",
        nodes: 16,
        fabric: FabricKind::FatTree {
            radix: 4,
            oversub: 2,
        },
        store: 5,
        readers: &[0, 6, 12],
        writers: 4,
        reads: 80,
        think_ns: 400,
    },
    Quadrant {
        // 2 racks of 16: readers same-leaf (3), cross-leaf (10), and two
        // cross-rack over the spine (17, 30).
        name: "datacenter_2x16",
        nodes: 32,
        fabric: FabricKind::Datacenter {
            racks: 2,
            radix: 4,
            oversub: 2,
        },
        store: 2,
        readers: &[3, 10, 17, 30],
        writers: 3,
        reads: 40,
        think_ns: 2000,
    },
    Quadrant {
        // The ISSUE's 256-node quadrant: 4 racks of 64 (radix-8 leaves).
        // Store on rack 0 leaf 1; readers same-leaf (8), cross-leaf (40),
        // cross-rack (70, 200). 250 of 256 nodes stay idle, so this also
        // tortures the O(active-nodes) window scheduler.
        name: "datacenter_4x64",
        nodes: 256,
        fabric: FabricKind::Datacenter {
            racks: 4,
            radix: 8,
            oversub: 2,
        },
        store: 9,
        readers: &[8, 40, 70, 200],
        writers: 4,
        reads: 30,
        think_ns: 2000,
    },
];

/// Everything observable about one quadrant run — what bit-identity
/// compares across shard × thread settings.
#[derive(Debug, PartialEq)]
struct RunFingerprint {
    ledger: Ledger,
    sent: u64,
    delivered: u64,
    dropped: u64,
    hops: HopStats,
    ops: u64,
    retries: u64,
    p99_ns: Option<u64>,
}

/// Runs one quadrant under `mech` at an explicit shards × threads
/// setting, applies every per-run checker, and returns the fingerprint.
fn run_quadrant(
    q: &Quadrant,
    mech: ReadMechanism,
    shards: usize,
    threads: usize,
) -> RunFingerprint {
    let label = format!("{} [{mech:?} {shards}x{threads}]", q.name);
    let mut builder = ScenarioBuilder::new()
        .seed(11)
        .nodes(q.nodes)
        .shards(shards)
        .threads(threads)
        .configure(|cfg| {
            // The store (24 × ~300 B slots) and the reader buffers fit in
            // 1 MB; the default 16 MB would cost the 256-node quadrant
            // 4 GB of host memory per run.
            cfg.memory_bytes = 1 << 20;
        });
    builder = match q.fabric {
        FabricKind::Mesh => builder,
        FabricKind::FatTree { radix, oversub } => builder.fat_tree(radix, oversub),
        FabricKind::Datacenter {
            racks,
            radix,
            oversub,
        } => builder.datacenter(racks, radix, oversub),
    };
    let (mut scenario, store) =
        builder.warmed_store(q.store, StoreLayout::Clean, PAYLOAD, Some(OBJECTS));
    let ledger = Arc::new(Mutex::new(Ledger::default()));
    let reads = q.reads;
    for &rnode in q.readers {
        let (store, ledger) = (store.clone(), Arc::clone(&ledger));
        scenario = scenario.reader(rnode, 0, move |_| {
            Box::new(TortureReader::new(mech, store, ledger, reads))
        });
    }
    // Racing CREW writers on the store node, paced by the quadrant's
    // think knob so version bumps are frequent enough that the raw
    // control's reads overlap the 40 ns store bursts, yet sparse enough
    // that the quadrant's slowest SABRe still commits between bumps.
    let entries = store.object_entries();
    let per_writer = entries.len().div_ceil(q.writers);
    for (w, chunk) in entries.chunks(per_writer).enumerate() {
        scenario = scenario.workload(
            q.store as usize,
            w,
            Box::new(Writer::new(
                chunk.to_vec(),
                PAYLOAD,
                WriterLayout::Clean,
                Time::from_ns(q.think_ns),
            )),
        );
    }
    let report = scenario.run_for(Time::from_us(DUR_US));
    let ledger = ledger.lock().expect("ledger poisoned").clone();

    check_conservation(&label, &report);
    check_atomicity(&label, mech, &ledger);
    check_freshness_ceiling(&label, &report, &store, &ledger);
    check_abort_freedom(&label, mech, &ledger);
    check_ledger_matches_metrics(&label, &report, &ledger);

    let cluster = report.cluster();
    let m = report.rack_metrics();
    RunFingerprint {
        sent: cluster.fabric().packets_total(),
        delivered: cluster.packets_delivered(),
        dropped: cluster.packets_dropped(),
        hops: report.hop_stats(),
        ops: m.ops,
        retries: m.retries,
        p99_ns: m.p99_ns(),
        ledger,
    }
}

// ---------------------------------------------------------------------------
// The named checkers
// ---------------------------------------------------------------------------

/// Conservation: the packet ledger balances at quiescence and the
/// streaming hop/queue counters agree with it — per-node stats merge
/// exactly to the whole-fabric totals, and no queueing counter exceeds
/// the traffic that could have paid it.
fn check_conservation(label: &str, report: &RunReport) {
    let cluster = report.cluster();
    let sent = cluster.fabric().packets_total();
    let delivered = cluster.packets_delivered();
    let dropped = cluster.packets_dropped();
    assert!(sent > 0, "{label}: the quadrant moved no packets");
    assert_eq!(
        sent,
        delivered + dropped,
        "{label}: packet ledger out of balance \
         (sent {sent}, delivered {delivered}, dropped {dropped})"
    );
    let hops = report.hop_stats();
    assert_eq!(
        hops.packets, sent,
        "{label}: the streaming counters missed packets"
    );
    let mut merged = HopStats::default();
    for nr in report.node_reports() {
        merged.merge(&nr.hops);
    }
    assert_eq!(
        merged, hops,
        "{label}: per-node hop stats do not merge to the fabric total"
    );
    assert!(
        hops.hops >= hops.packets,
        "{label}: a packet traversed fewer than one hop: {hops:?}"
    );
    assert!(
        hops.spine_crossings <= hops.packets,
        "{label}: more spine crossings than packets: {hops:?}"
    );
    assert!(
        hops.spine_queued <= hops.spine_crossings,
        "{label}: spine queueing without spine crossings: {hops:?}"
    );
    assert!(
        hops.uplink_queued <= hops.packets,
        "{label}: more uplink queueing than packets: {hops:?}"
    );
}

/// Atomicity: a read served as atomic is never torn; versions never run
/// backwards; and the harness genuinely raced (reads verified under
/// racing writers, not an idle store).
fn check_atomicity(label: &str, mech: ReadMechanism, ledger: &Ledger) {
    assert!(ledger.verified > 0, "{label}: no reads verified");
    assert_eq!(
        ledger.time_travel, 0,
        "{label}: a re-read observed an older version: {ledger:?}"
    );
    match mech {
        ReadMechanism::Sabre => assert_eq!(
            ledger.torn, 0,
            "{label}: {} torn reads served as atomic (of {} verified)",
            ledger.torn, ledger.verified
        ),
        // The control: raw reads on the same schedules must tear, or the
        // writers are not actually racing the readers.
        ReadMechanism::Raw => assert!(
            ledger.torn > 0,
            "{label}: the raw control never tore — no real races ({ledger:?})"
        ),
        _ => {}
    }
}

/// Freshness ceiling: no reader observed a sequence number newer than
/// what its writer actually published — the final store image bounds
/// every observation from above.
fn check_freshness_ceiling(label: &str, report: &RunReport, store: &ObjectStore, ledger: &Ledger) {
    let mem = report.cluster().node_memory(store.node() as usize);
    let mut compared = 0u64;
    for (obj, addr) in store.object_entries() {
        let Some(&observed) = ledger.max_seq.get(&obj) else {
            continue;
        };
        let image = mem.read_vec(addr, store.slot_bytes() as usize);
        let payload = CleanLayout::payload_of(&image, PAYLOAD as usize);
        // A writer caught mid-update leaves its object torn at the end of
        // the run; the ceiling is only readable from clean final images.
        let Some(final_seq) = verify_payload(obj, payload) else {
            continue;
        };
        compared += 1;
        assert!(
            observed <= final_seq,
            "{label}: object {obj} was read at seq {observed} but its \
             writer only reached seq {final_seq}"
        );
    }
    assert!(
        compared > 0,
        "{label}: freshness ceiling vacuous — no object was both read \
         and clean at the end"
    );
}

/// Abort-freedom: mechanisms that promise completion without retries
/// keep the promise on every quadrant.
fn check_abort_freedom(label: &str, mech: ReadMechanism, ledger: &Ledger) {
    let promises_no_aborts = matches!(
        mech,
        ReadMechanism::Raw | ReadMechanism::WfRegister { .. } | ReadMechanism::OhRam { .. }
    );
    if promises_no_aborts {
        assert_eq!(
            ledger.aborts, 0,
            "{label}: an abort-free mechanism aborted: {ledger:?}"
        );
    }
}

/// Cross-layer agreement: the harness's own ledger and the metrics
/// layer's counters describe the same run.
fn check_ledger_matches_metrics(label: &str, report: &RunReport, ledger: &Ledger) {
    let m = report.rack_metrics();
    assert_eq!(
        m.ops, ledger.verified,
        "{label}: metrics ops disagree with verified reads"
    );
    assert_eq!(
        m.retries, ledger.aborts,
        "{label}: metrics retries disagree with observed aborts"
    );
}

/// Bit-identity: the full fingerprint replays identically at every
/// shards × threads setting against the serial single-shard run.
fn check_bit_identity(label: &str, fingerprint: impl Fn(usize, usize) -> RunFingerprint) {
    let serial = fingerprint(1, 1);
    for shards in [1usize, 2, 8] {
        for threads in [1usize, 2, 8] {
            if shards == 1 && threads == 1 {
                continue;
            }
            assert_eq!(
                serial,
                fingerprint(shards, threads),
                "{label}: {shards} shards on {threads} threads diverged \
                 from the serial schedule"
            );
        }
    }
}

/// The full suite over one quadrant: every checker per run, both
/// mechanisms, bit-identity across the whole shards × threads grid.
fn torture(q: &Quadrant) {
    for mech in [ReadMechanism::Raw, ReadMechanism::Sabre] {
        check_bit_identity(&format!("{} [{mech:?}]", q.name), |shards, threads| {
            run_quadrant(q, mech, shards, threads)
        });
    }
}

// ---------------------------------------------------------------------------
// One test per quadrant
// ---------------------------------------------------------------------------

#[test]
fn mesh_rack_quadrant_holds_every_invariant() {
    torture(&QUADRANTS[0]);
}

#[test]
fn fat_tree_rack_quadrant_holds_every_invariant() {
    torture(&QUADRANTS[1]);
}

#[test]
fn two_rack_datacenter_quadrant_holds_every_invariant() {
    torture(&QUADRANTS[2]);
}

#[test]
fn datacenter_256_node_quadrant_holds_every_invariant() {
    torture(&QUADRANTS[3]);
}

/// The spine is actually in play: the datacenter quadrants' cross-rack
/// readers must account spine crossings in the streaming counters, the
/// single-rack quadrants must account none.
#[test]
fn spine_counters_track_the_topology() {
    for q in &QUADRANTS {
        let fp = run_quadrant(q, ReadMechanism::Sabre, 2, 2);
        match q.fabric {
            FabricKind::Mesh | FabricKind::FatTree { .. } => assert_eq!(
                fp.hops.spine_crossings, 0,
                "{}: spine crossings without a spine",
                q.name
            ),
            FabricKind::Datacenter { .. } => assert!(
                fp.hops.spine_crossings > 0,
                "{}: cross-rack readers never crossed the spine",
                q.name
            ),
        }
    }
}
