//! Fault determinism: crash/recovery injection must not perturb the
//! sharded loop's contracts.
//!
//! Three invariants:
//!
//! * a crash-laden scenario — outage, dropped packets, failover timers,
//!   replica migrations and all — replays **bit-identically** at every
//!   shards × threads setting, because drops are a pure function of the
//!   static [`FaultPlan`] evaluated at the destination's delivery point;
//! * so does a full **recovery**-laden scenario: a correlated whole-leaf
//!   outage with catch-up pulls, sibling bounces, guarded reads and
//!   replay on top of the crash machinery (the shipped fig_recovery
//!   construction, every counter of its [`RecoveryReport`] included);
//! * the packet-conservation invariant extends to faults and catch-up
//!   traffic: every packet the fabric accepted is either delivered
//!   exactly once or dropped by the fault plan — `sent == delivered +
//!   dropped` at quiescence.

use sabres::prelude::*;
use sabres::sim::HopStats;

use sabre_bench::experiments::fig_failover::{measure_threaded, Point, Policy};
use sabre_bench::experiments::fig_recovery;
use sabre_bench::experiments::fig_scale::Mechanism;

/// Everything observable about one fig_failover point: op count, float
/// mean, integer p99, and both fault counters.
fn fingerprint(p: Point) -> (u64, f64, u64, u64, u64) {
    (p.ops, p.latency_ns, p.p99_ns, p.failovers, p.migrations)
}

#[test]
fn crash_laden_fig_failover_is_shard_and_thread_invariant() {
    // The shipped fig_failover construction (not a copy of it), with the
    // mid-run store crash in play, replayed at shards {1, 2, 8} × threads
    // {1, 2, 8} for both replica-selection policies: every op count,
    // latency bit, failover and migration must match the serial run.
    for policy in [Policy::Adaptive, Policy::Static] {
        let serial = fingerprint(measure_threaded(Mechanism::Sabre, policy, 2, 1, Some(1)));
        assert!(serial.0 > 0, "{policy:?}: serial run must complete ops");
        assert!(serial.3 > 0, "{policy:?}: the crash must force failovers");
        for shards in [2usize, 8] {
            for threads in [1usize, 2, 8] {
                assert_eq!(
                    serial,
                    fingerprint(measure_threaded(
                        Mechanism::Sabre,
                        policy,
                        2,
                        shards,
                        Some(threads)
                    )),
                    "{policy:?}: {shards} shards on {threads} threads diverged \
                     from the serial crash schedule"
                );
            }
        }
    }
}

/// Everything observable about one fig_recovery point: op count, integer
/// p99, every recovery counter (both protocol sides), and migrations.
fn recovery_fingerprint(p: fig_recovery::Point) -> (u64, u64, RecoveryReport, u64) {
    (p.ops, p.p99_ns, p.recovery, p.migrations)
}

#[test]
fn recovery_laden_fig_recovery_is_shard_and_thread_invariant() {
    // The shipped fig_recovery construction (not a copy of it): the
    // whole-leaf outage, both sites' catch-up pulls, the mutual-staleness
    // bounces, the guarded reads and the replayed updates, replayed at
    // shards {1, 2, 8} × threads {1, 2, 8} for both guard policies. Every
    // op count, latency bit and recovery counter must match the serial
    // single-shard run.
    for mode in [fig_recovery::Mode::Refuse, fig_recovery::Mode::ServeStale] {
        let serial = recovery_fingerprint(fig_recovery::measure_threaded(mode, 2, 1, Some(1)));
        assert!(serial.0 > 0, "{mode:?}: serial run must complete ops");
        assert!(
            serial.2.catch_up_pulls >= 2,
            "{mode:?}: both restored sites must pull: {:?}",
            serial.2
        );
        assert!(
            serial.2.catch_up_refused > 0,
            "{mode:?}: the stale siblings must bounce: {:?}",
            serial.2
        );
        assert!(
            serial.2.replays_applied > 0,
            "{mode:?}: catch-up must replay updates: {:?}",
            serial.2
        );
        for shards in [2usize, 8] {
            for threads in [1usize, 2, 8] {
                assert_eq!(
                    serial,
                    recovery_fingerprint(fig_recovery::measure_threaded(
                        mode,
                        2,
                        shards,
                        Some(threads)
                    )),
                    "{mode:?}: {shards} shards on {threads} threads diverged \
                     from the serial recovery schedule"
                );
            }
        }
    }
}

#[test]
fn catch_up_traffic_extends_the_conservation_invariant() {
    // The leaf-outage recovery scenario with finite readers: catch-up
    // pulls and their burst replies cross the same fabric as everything
    // else, so at quiescence the ledger must still balance — every packet
    // (catch-up included) delivered exactly once or dropped by the plan.
    let builder = ScenarioBuilder::new().seed(7).nodes(8).fat_tree(2, 2);
    let topo = builder.config().topology.clone();
    let rack = builder.config().fabric.topology;
    let sites = replica_sites(&topo.store_nodes(), 3, rack);
    assert_eq!(sites, vec![4, 6, 5], "leaf-spread placement changed");
    let builder =
        builder.fault(FaultPlan::new().leaf_outage(rack, 2, Time::from_us(10), Time::from_us(50)));
    let (mut scenario, store) = builder.replicated_store(&sites, StoreLayout::Clean, 208, 8);
    let readers = topo.reader_nodes();
    for &rnode in &readers {
        scenario = scenario.reader_spec(
            rnode,
            0,
            spec()
                .replicas(store.view_for(rnode, rack))
                .payload(208)
                .mechanism(ReadMechanism::Raw)
                .wire(store.slot_bytes() as u32)
                .iterations(100)
                .failover_timeout(Time::from_us(10)),
        );
    }
    let log = WriteLog::new(Addr::new(1 << 20), 2048);
    for &site in &sites {
        let peers: Vec<u8> = sites
            .iter()
            .filter(|&&p| p != site)
            .map(|&p| p as u8)
            .collect();
        scenario = scenario.workload(
            site,
            0,
            Box::new(RecoveringWriter::new(
                store.object_entries(),
                208,
                WriterLayout::Clean,
                Time::from_ns(500),
                log,
                peers,
                Addr::new(2 << 20),
                8,
            )),
        );
    }
    let report = scenario.run_for(Time::from_us(300));
    let m = report.rack_metrics();
    assert_eq!(
        m.ops,
        100 * readers.len() as u64,
        "every reader must finish its iterations despite the leaf outage"
    );
    let r = report.recovery();
    assert!(
        r.catch_up_pulls >= 2,
        "both restored sites must pull over the fabric: {r:?}"
    );
    assert!(
        r.catch_up_refused > 0,
        "the stale siblings must bounce: {r:?}"
    );
    let cluster = report.cluster();
    let sent = cluster.fabric().packets_total();
    let delivered = cluster.packets_delivered();
    let dropped = cluster.packets_dropped();
    assert!(dropped > 0, "the leaf outage must drop packets");
    assert_eq!(
        sent,
        delivered + dropped,
        "every packet — catch-up traffic included — must be delivered \
         exactly once or dropped by the plan"
    );
}

#[test]
fn dropped_packets_extend_the_conservation_invariant() {
    // A finite replicated workload across a mid-run crash: once every
    // reader drains, every packet the fabric accepted was either
    // delivered exactly once or dropped by the fault plan — none linger,
    // none are double-counted.
    let builder = ScenarioBuilder::new().nodes(6).shards(2);
    let topo = builder.config().topology.clone();
    let rack = builder.config().fabric.topology;
    let store_nodes = topo.store_nodes();
    let sites = replica_sites(&store_nodes, 2.min(store_nodes.len()), rack);
    let builder = builder.fault(FaultPlan::new().crash_restore(
        sites[0],
        Time::from_us(10),
        Time::from_us(20),
    ));
    let (mut scenario, store) = builder.replicated_store(&sites, StoreLayout::Clean, 1024, 32);
    let readers = topo.reader_nodes();
    for &rnode in &readers {
        scenario = scenario.reader_spec(
            rnode,
            0,
            spec()
                .replicas(store.view_for(rnode, rack))
                .payload(1024)
                .mechanism(ReadMechanism::Sabre)
                .wire(store.slot_bytes() as u32)
                .iterations(40)
                .failover_timeout(Time::from_us(10)),
        );
    }
    let report = scenario.run_for(Time::from_us(400));
    let m = report.rack_metrics();
    assert_eq!(
        m.ops,
        40 * readers.len() as u64,
        "every reader must finish its iterations despite the outage"
    );
    assert!(m.failovers > 0, "the outage must force failovers");
    let cluster = report.cluster();
    let sent = cluster.fabric().packets_total();
    let delivered = cluster.packets_delivered();
    let dropped = cluster.packets_dropped();
    assert!(sent > 0, "the run must generate traffic");
    assert!(dropped > 0, "the outage must drop packets");
    assert_eq!(
        sent,
        delivered + dropped,
        "every packet must be delivered exactly once or dropped by the plan"
    );
}

/// Everything observable about one whole-rack-outage run: reader
/// metrics, the packet-conservation ledger, and the streaming hop/spine
/// counters.
type RackOutagePrint = (u64, Option<u64>, u64, u64, u64, u64, u64, HopStats);

/// A 32-node two-rack datacenter where *every* replica lives in rack 1
/// and a [`FaultPlan::rack_outage`] takes that whole rack — 16 nodes,
/// all three sites included — down mid-run. Rack-0 readers cross the
/// spine for every read, spin on their failover timers through the
/// outage, and finish after the restore.
fn rack_outage_fingerprint(shards: usize, threads: usize) -> RackOutagePrint {
    let builder = ScenarioBuilder::new()
        .seed(9)
        .nodes(32)
        .datacenter(2, 4, 2)
        .shards(shards)
        .threads(threads)
        .configure(|cfg| cfg.memory_bytes = 1 << 20);
    let rack = builder.config().fabric.topology;
    // Three replica sites on distinct leaves of rack 1.
    let sites = vec![20usize, 25, 30];
    let builder =
        builder.fault(FaultPlan::new().rack_outage(rack, 1, Time::from_us(10), Time::from_us(60)));
    let (mut scenario, store) = builder.replicated_store(&sites, StoreLayout::Clean, 256, 16);
    let readers = [0usize, 5, 10, 15];
    for &rnode in &readers {
        scenario = scenario.reader_spec(
            rnode,
            0,
            spec()
                .replicas(store.view_for(rnode, rack))
                .payload(256)
                .mechanism(ReadMechanism::Raw)
                .wire(store.slot_bytes() as u32)
                .iterations(50)
                .failover_timeout(Time::from_us(5)),
        );
    }
    let report = scenario.run_for(Time::from_us(400));
    let m = report.rack_metrics();
    let cluster = report.cluster();
    (
        m.ops,
        m.p99_ns(),
        m.failovers,
        m.migrations,
        cluster.fabric().packets_total(),
        cluster.packets_delivered(),
        cluster.packets_dropped(),
        report.hop_stats(),
    )
}

#[test]
fn whole_rack_outage_is_shard_and_thread_invariant() {
    // The generalized outage: a whole rack (not just a leaf) dies and
    // restores mid-run across the inter-rack spine. The run must replay
    // bit-identically at shards {1, 2, 8} x threads {1, 2, 8}, every
    // failover timer, dropped packet and spine crossing included.
    let serial = rack_outage_fingerprint(1, 1);
    assert_eq!(serial.0, 200, "every reader must finish despite the outage");
    assert!(serial.2 > 0, "the rack outage must force failovers");
    assert!(serial.6 > 0, "the rack outage must drop packets");
    assert_eq!(
        serial.4,
        serial.5 + serial.6,
        "conservation must hold over the outage: {serial:?}"
    );
    assert!(
        serial.7.spine_crossings > 0,
        "cross-rack replicas must cross the spine: {:?}",
        serial.7
    );
    for shards in [1usize, 2, 8] {
        for threads in [1usize, 2, 8] {
            if shards == 1 && threads == 1 {
                continue;
            }
            assert_eq!(
                serial,
                rack_outage_fingerprint(shards, threads),
                "{shards} shards on {threads} threads diverged from the \
                 serial rack-outage schedule"
            );
        }
    }
}
