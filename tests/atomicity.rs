//! End-to-end atomicity soundness: the paper's core guarantee, checked on
//! the full simulated system.
//!
//! **Invariant**: any read that completes as *atomic* — whether checked by
//! LightSABRes in hardware (OCC or locking, speculative or not) or by the
//! software mechanisms (per-CL versions, checksums) — returns bytes equal
//! to a single committed snapshot of the object, under racing writers.
//!
//! Writers store recognizable patterns ([`pattern_payload`]); a read is a
//! consistent snapshot iff [`verify_payload`] accepts it. The verifying
//! reader asserts this on *every* successful completion, so any torn read
//! that slips past an atomicity mechanism fails the test immediately.
//!
//! Four layers of adversity:
//!
//! * the paper-shaped two-node races ([`race`]), one per mechanism/mode;
//! * the multi-node **torture sweep**: 64 seeded schedules across 2–8-node
//!   racks (fully sharded event loop, one shard per node), rotating
//!   through every read mechanism — OCC, no-speculation, destination
//!   locking, per-CL versions, the wait-free register, and Oh-RAM — with
//!   seed-derived payloads, writer partitions and placements, plus a
//!   raw-read control proving the same schedules do tear without a
//!   mechanism;
//! * the **kill-a-node quadrant**: the same racing writers replayed per
//!   replica of a [`ReplicatedStore`] while a [`FaultPlan`] crashes one
//!   replica site mid-run — readers fail over on a timeout and the
//!   invariant must hold on every image any surviving replica serves;
//! * the **kill-a-leaf quadrant**: a whole fat-tree leaf — two of the
//!   three replica sites, [`RecoveringWriter`]s and all — dies mid-run,
//!   so the restored images genuinely miss the outage window's updates
//!   and must catch up over the fabric. On top of the no-torn-read
//!   invariant, readers prove the epoch/seq guard's *freshness* claim: a
//!   restored replica never serves pre-outage data after the guard drops.

use std::sync::{Arc, Mutex};

use sabres::prelude::*;

/// Counts verified/torn/aborted reads, shared with the reader workload.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
struct Outcome {
    verified: u64,
    torn: u64,
    aborts: u64,
    /// Attempts abandoned to a failover timer (kill-a-node quadrant only).
    failovers: u64,
    /// Attempts bounced by a catching-up replica's epoch/seq guard and
    /// retried elsewhere (kill-a-leaf quadrant only).
    refusals: u64,
    /// Verified reads that a restored replica served with **pre-outage**
    /// data after its catch-up guard dropped — the recovery protocol's
    /// freshness violation, asserted zero (kill-a-leaf quadrant only).
    stale_post: u64,
}

/// Validates an image under `mech`; `Some(payload)` when the mechanism
/// declares the read atomic.
fn extract_atomic(mech: ReadMechanism, payload: usize, image: &[u8]) -> Option<Vec<u8>> {
    match mech {
        ReadMechanism::Sabre => Some(CleanLayout::payload_of(image, payload).to_vec()),
        ReadMechanism::PerClValidate { .. } => PerClLayout::validate_and_strip(image, payload).ok(),
        ReadMechanism::ChecksumValidate { .. } => {
            sabres::sw::ChecksumLayout::validate(image, payload)
                .ok()
                .map(<[u8]>::to_vec)
        }
        // The wait-free register ships `[header | one slot]`; the capture
        // guarantees the slot is the published version, whole. The slot's
        // own seq word must agree with the publish word it was read under.
        ReadMechanism::WfRegister { .. } => {
            use sabres::sw::WfRegisterLayout;
            let (pub_seq, _) = WfRegisterLayout::published_of(image);
            assert_eq!(
                WfRegisterLayout::slot_seq_of(image),
                pub_seq,
                "wait-free capture delivered a slot from another version"
            );
            Some(WfRegisterLayout::payload_of(image, payload).to_vec())
        }
        // Oh-RAM ships the clean object under a server-side consistent
        // capture; nothing to validate client-side.
        ReadMechanism::OhRam { .. } => Some(CleanLayout::payload_of(image, payload).to_vec()),
        ReadMechanism::Raw => unreachable!("raw reads claim no atomicity"),
    }
}

/// A reader that cross-checks every "atomic" completion against the
/// writer pattern.
struct CheckedReader {
    mech: ReadMechanism,
    store: ObjectStore,
    outcome: Arc<Mutex<Outcome>>,
    cur_obj: u64,
    /// Outstanding Oh-RAM confirm writes, discarded by `wq_id`.
    confirm_inflight: std::collections::HashSet<u64>,
}

impl CheckedReader {
    fn new(mech: ReadMechanism, store: ObjectStore, outcome: Arc<Mutex<Outcome>>) -> Self {
        CheckedReader {
            mech,
            store,
            outcome,
            cur_obj: 0,
            confirm_inflight: std::collections::HashSet::new(),
        }
    }

    fn wire(&self) -> u32 {
        // The transfer footprint, not the in-memory spacing: the wait-free
        // register stores four version slots but ships only the published
        // one.
        self.store.wire_bytes() as u32
    }

    fn buf(&self, api: &CoreApi<'_>) -> Addr {
        Addr::new(api.config().memory_bytes as u64 / 2 + api.core() as u64 * 64 * 1024)
    }

    fn issue(&mut self, api: &mut CoreApi<'_>) {
        self.cur_obj = api.rng().below(self.store.n_objects());
        let addr = self.store.object_addr(self.cur_obj);
        let buf = self.buf(api);
        let wire = self.wire();
        api.issue(self.mech.op(), self.store.node(), addr, buf, wire, 0);
    }

    /// Validates the image under the mechanism; `Some(payload)` when the
    /// mechanism declares the read atomic.
    fn extract(&self, image: &[u8]) -> Option<Vec<u8>> {
        extract_atomic(self.mech, self.store.payload() as usize, image)
    }
}

impl Workload for CheckedReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.issue(api);
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        if self.confirm_inflight.remove(&cq.wq_id) {
            return; // Oh-RAM confirm ack; the read already completed.
        }
        let mut o = self.outcome.lock().expect("outcome poisoned");
        if cq.success {
            let image = api.read_local(self.buf(api), self.wire() as usize);
            match self.extract(&image) {
                Some(payload) => {
                    if verify_payload(self.cur_obj, &payload).is_some() {
                        o.verified += 1;
                    } else {
                        o.torn += 1;
                    }
                }
                // The software check itself rejected the image.
                None => o.aborts += 1,
            }
        } else {
            o.aborts += 1;
        }
        drop(o);
        if matches!(self.mech, ReadMechanism::OhRam { .. }) {
            // Relay Oh-RAM's fire-and-forget confirm (the half round).
            let buf = self.buf(api);
            let tag = tag_board_addr(api.config().memory_bytes as u64);
            let wq = api.issue_write(self.store.node(), tag, buf, 8);
            self.confirm_inflight.insert(wq);
        }
        self.issue(api);
    }
}

/// Raw variant of the checked reader: counts torn images instead of
/// asserting (the control proving the harness generates real races).
struct RawReader(CheckedReader);

impl Workload for RawReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.0.issue(api);
    }
    fn on_completion(&mut self, api: &mut CoreApi<'_>, _cq: CqEntry) {
        let image = api.read_local(self.0.buf(api), self.0.wire() as usize);
        let payload = CleanLayout::payload_of(&image, self.0.store.payload() as usize);
        let mut o = self.0.outcome.lock().expect("outcome poisoned");
        if verify_payload(self.0.cur_obj, payload).is_some() {
            o.verified += 1;
        } else {
            o.torn += 1;
        }
        drop(o);
        self.0.issue(api);
    }
}

/// Runs `readers` checked readers against continuous writers for `dur_us`
/// of simulated time and returns the outcome.
fn race(
    mech: ReadMechanism,
    layout: StoreLayout,
    writer_layout: WriterLayout,
    cc_mode: CcMode,
    spec_mode: SpecMode,
    payload: u32,
    seed: u64,
) -> Outcome {
    let (scenario, store) = ScenarioBuilder::new()
        .configure(|cfg| {
            cfg.lightsabres.cc_mode = cc_mode;
            cfg.lightsabres.spec_mode = spec_mode;
        })
        .seed(seed)
        .warmed_store(1, layout, payload, Some(24));

    let outcome = Arc::new(Mutex::new(Outcome::default()));
    let mut scenario = scenario;
    for core in 0..4 {
        let (store, outcome) = (store.clone(), Arc::clone(&outcome));
        scenario = scenario.reader(0, core, move |_| {
            Box::new(CheckedReader::new(mech, store, outcome))
        });
    }
    // Aggressive writers over small CREW subsets maximize conflicts.
    let entries = store.object_entries();
    for (w, chunk) in entries.chunks(6).enumerate() {
        let mut writer = Writer::new(chunk.to_vec(), payload, writer_layout, Time::ZERO);
        if cc_mode == CcMode::Locking {
            writer = writer.respecting_reader_locks();
        }
        scenario = scenario.workload(1, w, Box::new(writer));
    }
    scenario.run_for(Time::from_us(120));
    let o = outcome.lock().expect("outcome poisoned");
    o.clone()
}

fn assert_sound(mech: ReadMechanism, o: &Outcome) {
    assert_eq!(
        o.torn, 0,
        "{mech:?}: {} torn objects delivered as atomic (of {} verified, {} aborts)",
        o.torn, o.verified, o.aborts
    );
    assert!(o.verified > 50, "{mech:?}: too few successes: {o:?}");
    assert!(
        o.aborts > 0,
        "{mech:?}: no conflicts at all — the race harness is not racing: {o:?}"
    );
}

#[test]
fn sabre_occ_speculative_reads_are_never_torn() {
    for seed in [1, 2, 3] {
        let o = race(
            ReadMechanism::Sabre,
            StoreLayout::Clean,
            WriterLayout::Clean,
            CcMode::Occ,
            SpecMode::Speculative,
            480,
            seed,
        );
        assert_sound(ReadMechanism::Sabre, &o);
    }
}

#[test]
fn sabre_occ_no_speculation_reads_are_never_torn() {
    let o = race(
        ReadMechanism::Sabre,
        StoreLayout::Clean,
        WriterLayout::Clean,
        CcMode::Occ,
        SpecMode::ReadVersionFirst,
        480,
        7,
    );
    assert_sound(ReadMechanism::Sabre, &o);
}

#[test]
fn sabre_destination_locking_reads_are_never_torn() {
    let o = race(
        ReadMechanism::Sabre,
        StoreLayout::Clean,
        WriterLayout::Clean,
        CcMode::Locking,
        SpecMode::Speculative,
        480,
        11,
    );
    assert_eq!(o.torn, 0, "locking mode delivered torn objects: {o:?}");
    assert!(o.verified > 50, "too few successes: {o:?}");
}

#[test]
fn sabre_large_objects_are_never_torn() {
    let o = race(
        ReadMechanism::Sabre,
        StoreLayout::Clean,
        WriterLayout::Clean,
        CcMode::Occ,
        SpecMode::Speculative,
        4000,
        13,
    );
    assert_sound(ReadMechanism::Sabre, &o);
}

#[test]
fn percl_validated_reads_are_never_torn() {
    for seed in [1, 5] {
        let o = race(
            ReadMechanism::PerClValidate { payload: 480 },
            StoreLayout::PerCl,
            WriterLayout::PerCl,
            CcMode::Occ,
            SpecMode::Speculative,
            480,
            seed,
        );
        assert_sound(ReadMechanism::PerClValidate { payload: 480 }, &o);
    }
}

#[test]
fn raw_reads_do_tear_under_conflict() {
    // The control experiment: with no atomicity mechanism, the same racing
    // harness must produce torn reads — otherwise the other tests prove
    // nothing.
    let (scenario, store) =
        ScenarioBuilder::new()
            .seed(99)
            .warmed_store(1, StoreLayout::Clean, 480, Some(8));
    let outcome = Arc::new(Mutex::new(Outcome::default()));

    let mut scenario = scenario;
    for core in 0..4 {
        let (store, outcome) = (store.clone(), Arc::clone(&outcome));
        scenario = scenario.reader(0, core, move |_| {
            Box::new(RawReader(CheckedReader::new(
                ReadMechanism::Raw,
                store,
                outcome,
            )))
        });
    }
    for (w, chunk) in store.object_entries().chunks(2).enumerate() {
        scenario = scenario.workload(
            1,
            w,
            Box::new(Writer::new(
                chunk.to_vec(),
                480,
                WriterLayout::Clean,
                Time::ZERO,
            )),
        );
    }
    scenario.run_for(Time::from_us(120));
    let o = outcome.lock().expect("outcome poisoned");
    assert!(
        o.torn > 0,
        "raw reads never tore — the harness is not generating real races"
    );
}

// ---------------------------------------------------------------------
// The multi-node torture sweep
// ---------------------------------------------------------------------

/// The read mechanisms the sweep rotates through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum TortureMech {
    /// Destination OCC, speculative (the paper's configuration).
    Occ,
    /// Destination OCC, serialized version read first.
    NoSpec,
    /// Destination locking (shared reader locks).
    Locking,
    /// FaRM per-cache-line versions validated on the reader CPU.
    PerCl,
    /// The wait-free multi-version register (server-side slot capture).
    WfRegister,
    /// Oh-RAM's one-and-a-half-round read (server-side clean capture).
    OhRam,
}

impl TortureMech {
    const ALL: [TortureMech; 6] = [
        TortureMech::Occ,
        TortureMech::NoSpec,
        TortureMech::Locking,
        TortureMech::PerCl,
        TortureMech::WfRegister,
        TortureMech::OhRam,
    ];

    /// Whether readers of this mechanism never abort by construction: the
    /// server-side captures resolve every conflict before replying, so
    /// the client-visible abort count must be exactly zero — the inverse
    /// of the "did it race" check the abort-based mechanisms get.
    fn is_abort_free(self) -> bool {
        matches!(self, TortureMech::WfRegister | TortureMech::OhRam)
    }

    /// The mechanism's full configuration: reader mechanism, store/writer
    /// layouts, engine concurrency-control and speculation modes.
    fn setup(self, payload: u32) -> (ReadMechanism, StoreLayout, WriterLayout, CcMode, SpecMode) {
        match self {
            TortureMech::Occ => (
                ReadMechanism::Sabre,
                StoreLayout::Clean,
                WriterLayout::Clean,
                CcMode::Occ,
                SpecMode::Speculative,
            ),
            TortureMech::NoSpec => (
                ReadMechanism::Sabre,
                StoreLayout::Clean,
                WriterLayout::Clean,
                CcMode::Occ,
                SpecMode::ReadVersionFirst,
            ),
            TortureMech::Locking => (
                ReadMechanism::Sabre,
                StoreLayout::Clean,
                WriterLayout::Clean,
                CcMode::Locking,
                SpecMode::Speculative,
            ),
            TortureMech::PerCl => (
                ReadMechanism::PerClValidate { payload },
                StoreLayout::PerCl,
                WriterLayout::PerCl,
                CcMode::Occ,
                SpecMode::Speculative,
            ),
            TortureMech::WfRegister => (
                ReadMechanism::WfRegister { payload },
                StoreLayout::WfRegister,
                WriterLayout::WfRegister,
                CcMode::Occ,
                SpecMode::Speculative,
            ),
            TortureMech::OhRam => (
                ReadMechanism::OhRam { payload },
                StoreLayout::Clean,
                WriterLayout::Clean,
                CcMode::Occ,
                SpecMode::Speculative,
            ),
        }
    }
}

/// One seed-derived adversarial schedule on an N-node rack: every store
/// node hosts a shard with hot writers partitioned over its cores, every
/// reader node runs two checked readers against its round-robin shard,
/// and the event loop runs fully sharded (one shard per node). Payload
/// size and writer partitioning vary with the seed so the sweep explores
/// genuinely different schedules, not one schedule with different RNG.
fn torture_race(tm: TortureMech, nodes: usize, seed: u64) -> Outcome {
    torture_race_threaded(tm, nodes, seed, 1)
}

/// [`torture_race`] with an explicit worker-thread count driving the
/// fully sharded loop — the sweep certifying thread dispatch never
/// perturbs an adversarial schedule.
fn torture_race_threaded(tm: TortureMech, nodes: usize, seed: u64, threads: usize) -> Outcome {
    let payload = [208u32, 480, 1008][(seed % 3) as usize];
    let (mech, layout, writer_layout, cc_mode, spec_mode) = tm.setup(payload);
    let builder = ScenarioBuilder::new()
        .configure(move |cfg| {
            cfg.lightsabres.cc_mode = cc_mode;
            cfg.lightsabres.spec_mode = spec_mode;
        })
        .seed(seed)
        .nodes(nodes)
        .shards(nodes)
        .threads(threads);
    let topo = builder.config().topology.clone();
    let (mut scenario, shards) = builder.sharded_store(topo.store_nodes(), layout, payload, 12);
    let outcome = Arc::new(Mutex::new(Outcome::default()));
    for (i, &rnode) in topo.reader_nodes().iter().enumerate() {
        for core in 0..2 {
            let (store, outcome) = (shards[i % shards.len()].clone(), Arc::clone(&outcome));
            scenario = scenario.reader(rnode, core, move |_| {
                Box::new(CheckedReader::new(mech, store, outcome))
            });
        }
    }
    // Seed-derived writer partitioning: smaller chunks = more writers =
    // more simultaneous in-flight updates per shard.
    let chunk = [3usize, 4, 6][((seed / 3) % 3) as usize];
    for shard in &shards {
        for (w, entries) in shard.object_entries().chunks(chunk).enumerate() {
            let mut writer = Writer::new(entries.to_vec(), payload, writer_layout, Time::ZERO);
            if cc_mode == CcMode::Locking {
                writer = writer.respecting_reader_locks();
            }
            scenario = scenario.workload(shard.node() as usize, w, Box::new(writer));
        }
    }
    scenario.run_for(Time::from_us(30));
    let o = outcome.lock().expect("outcome poisoned");
    o.clone()
}

#[test]
fn torture_no_sabre_mechanism_ever_tears_across_rack_sizes() {
    // 64 seeded schedules, node counts cycling 2..=8, mechanisms rotating
    // so each of the six gets 10+ genuinely different schedules.
    let results = Sweep::over(0u64..64).map(|&seed| {
        let nodes = 2 + (seed as usize % 7);
        let tm = TortureMech::ALL[(seed % 6) as usize];
        (tm, nodes, seed, torture_race(tm, nodes, seed))
    });
    let mut per_mech: std::collections::HashMap<TortureMech, Outcome> =
        std::collections::HashMap::new();
    for (tm, nodes, seed, o) in &results {
        assert_eq!(
            o.torn, 0,
            "{tm:?} on {nodes} nodes (seed {seed}): {} torn objects delivered as atomic \
             (of {} verified, {} aborts)",
            o.torn, o.verified, o.aborts
        );
        assert!(
            o.verified > 20,
            "{tm:?} on {nodes} nodes (seed {seed}): too few successes: {o:?}"
        );
        let e = per_mech.entry(*tm).or_default();
        e.verified += o.verified;
        e.torn += o.torn;
        e.aborts += o.aborts;
    }
    for tm in TortureMech::ALL {
        let o = &per_mech[&tm];
        if tm.is_abort_free() {
            assert_eq!(
                o.aborts, 0,
                "{tm:?}: aborted despite being wait-free by construction: {o:?}"
            );
        } else {
            assert!(
                o.aborts > 0,
                "{tm:?}: no conflicts in any of its schedules — the torture \
                 harness is not racing: {o:?}"
            );
        }
    }
}

#[test]
fn torture_outcomes_are_thread_invariant_on_the_eight_node_rack() {
    // The 8-node torture schedules (fully sharded, one shard per node),
    // replayed at worker-thread counts {1, 2, shards}: the adversarial
    // interleavings — including every conflict and abort — must be
    // untouched by how shards map onto OS threads. One schedule per
    // mechanism keeps the sweep affordable.
    for (tm, seed) in [
        (TortureMech::Occ, 8u64),
        (TortureMech::NoSpec, 9),
        (TortureMech::Locking, 10),
        (TortureMech::PerCl, 11),
        (TortureMech::WfRegister, 16),
        (TortureMech::OhRam, 17),
    ] {
        let serial = torture_race_threaded(tm, 8, seed, 1);
        assert!(
            serial.verified > 0,
            "{tm:?} (seed {seed}): no progress in the serial run"
        );
        for threads in [2usize, 8] {
            assert_eq!(
                serial,
                torture_race_threaded(tm, 8, seed, threads),
                "{tm:?} (seed {seed}): {threads} worker threads changed the schedule"
            );
        }
    }
}

/// One seed-derived adversarial schedule on the fat-tree quadrant of the
/// torture space: an 8-node 1:3 skewed rack
/// ([`Topology::skewed`]`(2, 3)`) on a 4:1 oversubscribed leaf/spine
/// fabric, readers pinned to shards by [`PlacementPolicy::NearestShard`],
/// fully sharded event loop. `mech` [`None`] runs the raw-read control.
fn fat_tree_nearest_race(tm: Option<TortureMech>, seed: u64) -> Outcome {
    let payload = [208u32, 480, 1008][(seed % 3) as usize];
    let (mech, layout, writer_layout, cc_mode, spec_mode) = match tm {
        Some(tm) => tm.setup(payload),
        None => (
            ReadMechanism::Raw,
            StoreLayout::Clean,
            WriterLayout::Clean,
            CcMode::Occ,
            SpecMode::Speculative,
        ),
    };
    let builder = ScenarioBuilder::new()
        .configure(move |cfg| {
            cfg.lightsabres.cc_mode = cc_mode;
            cfg.lightsabres.spec_mode = spec_mode;
        })
        .seed(seed)
        .topology(Topology::skewed(2, 3).with_placement(PlacementPolicy::NearestShard))
        .fat_tree(4, 4)
        .shards(8);
    let cfg = builder.config().clone();
    let topo = cfg.topology.clone();
    let store_nodes = topo.store_nodes();
    let (mut scenario, shards) = builder.sharded_store(store_nodes.clone(), layout, payload, 12);
    let outcome = Arc::new(Mutex::new(Outcome::default()));
    for (i, &rnode) in topo.reader_nodes().iter().enumerate() {
        // NearestShard keeps each reader cohort on its own leaf's shard.
        let store = cfg.store_for_reader(i);
        let shard_pos = store_nodes
            .iter()
            .position(|&s| s == store)
            .expect("placement returns a store node");
        for core in 0..2 {
            let (store, outcome) = (shards[shard_pos].clone(), Arc::clone(&outcome));
            scenario = scenario.reader(rnode, core, move |_| {
                let checked = CheckedReader::new(mech, store, outcome);
                if mech == ReadMechanism::Raw {
                    Box::new(RawReader(checked)) as Box<dyn Workload>
                } else {
                    Box::new(checked)
                }
            });
        }
    }
    let chunk = [3usize, 4, 6][((seed / 3) % 3) as usize];
    for shard in &shards {
        for (w, entries) in shard.object_entries().chunks(chunk).enumerate() {
            let mut writer = Writer::new(entries.to_vec(), payload, writer_layout, Time::ZERO);
            if cc_mode == CcMode::Locking {
                writer = writer.respecting_reader_locks();
            }
            scenario = scenario.workload(shard.node() as usize, w, Box::new(writer));
        }
    }
    scenario.run_for(Time::from_us(30));
    let o = outcome.lock().expect("outcome poisoned");
    o.clone()
}

#[test]
fn torture_fat_tree_nearest_shard_mechanisms_never_tear() {
    // The fat-tree quadrant: every SABRes-family mechanism gets two
    // seed-derived schedules on the skewed, oversubscribed, placement-
    // aware rack; none may deliver a torn object as atomic.
    let mut aborts = 0u64;
    for (i, tm) in TortureMech::ALL.iter().enumerate() {
        for seed in [i as u64, i as u64 + 4] {
            let o = fat_tree_nearest_race(Some(*tm), seed);
            assert_eq!(
                o.torn, 0,
                "{tm:?} on the 4:1 fat tree (seed {seed}): {} torn objects delivered \
                 as atomic (of {} verified, {} aborts)",
                o.torn, o.verified, o.aborts
            );
            assert!(
                o.verified > 20,
                "{tm:?} on the 4:1 fat tree (seed {seed}): too few successes: {o:?}"
            );
            aborts += o.aborts;
        }
    }
    assert!(
        aborts > 0,
        "no conflicts in any fat-tree schedule — the quadrant is not racing"
    );
}

#[test]
fn torture_fat_tree_nearest_shard_raw_control_tears() {
    // The control: the same fat-tree + NearestShard schedules with the
    // mechanism stripped out must produce torn reads, or the quadrant
    // above proves nothing.
    let torn: u64 = (0..4u64)
        .map(|seed| fat_tree_nearest_race(None, seed).torn)
        .sum();
    assert!(
        torn > 0,
        "raw reads never tore on the fat-tree quadrant — it is not generating real races"
    );
}

#[test]
fn torture_raw_reads_still_tear_on_every_rack_size() {
    // The control: the same seed-derived schedules, mechanism stripped
    // out. Aggregated per node count so torn reads must show up at every
    // rack size, not just the paper pair.
    for nodes in [2usize, 5, 8] {
        let mut torn = 0u64;
        for seed in 0..4u64 {
            let payload = [208u32, 480, 1008][(seed % 3) as usize];
            let builder = ScenarioBuilder::new().seed(seed).nodes(nodes).shards(nodes);
            let topo = builder.config().topology.clone();
            let (mut scenario, shards) =
                builder.sharded_store(topo.store_nodes(), StoreLayout::Clean, payload, 8);
            let outcome = Arc::new(Mutex::new(Outcome::default()));
            for (i, &rnode) in topo.reader_nodes().iter().enumerate() {
                for core in 0..2 {
                    let (store, outcome) = (shards[i % shards.len()].clone(), Arc::clone(&outcome));
                    scenario = scenario.reader(rnode, core, move |_| {
                        Box::new(RawReader(CheckedReader::new(
                            ReadMechanism::Raw,
                            store,
                            outcome,
                        )))
                    });
                }
            }
            for shard in &shards {
                for (w, entries) in shard.object_entries().chunks(2).enumerate() {
                    scenario = scenario.workload(
                        shard.node() as usize,
                        w,
                        Box::new(Writer::new(
                            entries.to_vec(),
                            payload,
                            WriterLayout::Clean,
                            Time::ZERO,
                        )),
                    );
                }
            }
            scenario.run_for(Time::from_us(30));
            torn += outcome.lock().expect("outcome poisoned").torn;
        }
        assert!(
            torn > 0,
            "raw reads never tore on a {nodes}-node rack — the torture \
             schedules are not generating real races there"
        );
    }
}

// ---------------------------------------------------------------------
// The kill-a-node quadrant
// ---------------------------------------------------------------------

/// Failover timer of the crash quadrant's readers: comfortably above any
/// healthy transfer latency, so only reads lost to the outage trip it.
const CRASH_TIMEOUT: Time = Time::from_us(10);

/// Replication factor of the crash quadrant, capped by the rack's store
/// count (the 2-node rack replays the schedules with a single replica:
/// no survivor to fail over to, but still never a torn read).
const CRASH_REPLICATION: usize = 3;

/// The kill-a-leaf quadrant's freshness oracle, shared by every reader.
///
/// Pattern seqs are monotone per object and every replica runs the same
/// deterministic update schedule, so the highest seq any reader verified
/// for an object *before* the outage began is a floor the restored
/// replicas must clear once their catch-up guard drops: a post-outage
/// completion from a restored site at or below that ceiling is data the
/// outage should have invalidated. Ceiling updates are a commutative
/// `max`, all of them separated from every check by the outage window
/// itself, so the shared state never perturbs thread invariance.
#[derive(Clone)]
struct StaleGuard {
    /// Per-object highest pattern seq verified before `outage_from`.
    ceilings: Arc<Mutex<Vec<u64>>>,
    /// The replica sites the leaf outage takes down and restores.
    restored: Vec<u8>,
    outage_from: Time,
    outage_until: Time,
}

/// A checked reader over a replicated placement: rotates the starting
/// replica per operation, fails over (round-robin) when the failover
/// timer fires before the transfer completes, and cross-checks every
/// "atomic" completion against the writer pattern — [`CheckedReader`]'s
/// invariant, now required to hold on whatever image whatever surviving
/// replica serves across a mid-run crash. `raw` strips the mechanism and
/// counts torn images instead (the control).
struct CheckedFailoverReader {
    mech: ReadMechanism,
    replicas: Vec<ObjectStore>,
    outcome: Arc<Mutex<Outcome>>,
    raw: bool,
    ops: u64,
    start: usize,
    cur_obj: u64,
    cur_replica: usize,
    inflight: Option<u64>,
    /// Armed timeout wq-ids in firing order (every timer shares one
    /// duration, so wakes fire in arming order).
    pending: std::collections::VecDeque<u64>,
    /// Post-outage freshness oracle (kill-a-leaf quadrant only).
    stale_guard: Option<StaleGuard>,
}

impl CheckedFailoverReader {
    fn new(
        mech: ReadMechanism,
        replicas: Vec<ObjectStore>,
        start: usize,
        outcome: Arc<Mutex<Outcome>>,
        raw: bool,
    ) -> Self {
        assert!(!replicas.is_empty(), "a replicated placement needs sites");
        CheckedFailoverReader {
            mech,
            replicas,
            outcome,
            raw,
            ops: 0,
            start,
            cur_obj: 0,
            cur_replica: start,
            inflight: None,
            pending: std::collections::VecDeque::new(),
            stale_guard: None,
        }
    }

    /// Arms the post-outage freshness check (kill-a-leaf quadrant).
    fn with_stale_guard(mut self, guard: StaleGuard) -> Self {
        self.stale_guard = Some(guard);
        self
    }

    fn wire(&self) -> u32 {
        self.replicas[0].wire_bytes() as u32
    }

    fn buf(&self, api: &CoreApi<'_>) -> Addr {
        Addr::new(api.config().memory_bytes as u64 / 2 + api.core() as u64 * 64 * 1024)
    }

    /// Starts the next operation: fresh object, next round-robin replica.
    fn issue_next(&mut self, api: &mut CoreApi<'_>) {
        self.ops += 1;
        self.cur_replica = (self.start + self.ops as usize) % self.replicas.len();
        self.cur_obj = api.rng().below(self.replicas[0].n_objects());
        self.issue_attempt(api);
    }

    /// Issues the current object at the current replica and arms the
    /// failover timer.
    fn issue_attempt(&mut self, api: &mut CoreApi<'_>) {
        let store = &self.replicas[self.cur_replica];
        let addr = store.object_addr(self.cur_obj);
        let (buf, wire) = (self.buf(api), self.wire());
        let wq = api.issue(self.mech.op(), store.node(), addr, buf, wire, 0);
        self.inflight = Some(wq);
        self.pending.push_back(wq);
        api.sleep(CRASH_TIMEOUT);
    }
}

impl Workload for CheckedFailoverReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.issue_next(api);
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        if self.inflight != Some(cq.wq_id) {
            // A late completion of an attempt already abandoned to its
            // failover timer.
            return;
        }
        self.inflight = None;
        if cq.refused {
            // The replica's epoch/seq guard is up (the site is catching
            // up after an outage). A refusal is an answer, not a
            // conflict: retry the same object at the next replica so the
            // wait-free mechanisms' zero-abort guarantee stays intact.
            self.outcome.lock().expect("outcome poisoned").refusals += 1;
            self.cur_replica = (self.cur_replica + 1) % self.replicas.len();
            self.issue_attempt(api);
            return;
        }
        let image = api.read_local(self.buf(api), self.wire() as usize);
        let payload = self.replicas[0].payload() as usize;
        let mut o = self.outcome.lock().expect("outcome poisoned");
        if self.raw {
            if verify_payload(self.cur_obj, CleanLayout::payload_of(&image, payload)).is_some() {
                o.verified += 1;
            } else {
                o.torn += 1;
            }
        } else if cq.success {
            match extract_atomic(self.mech, payload, &image) {
                Some(payload) => match verify_payload(self.cur_obj, &payload) {
                    Some(seq) => {
                        o.verified += 1;
                        if let Some(g) = &self.stale_guard {
                            let node = self.replicas[self.cur_replica].node();
                            let now = api.now();
                            let mut ceil = g.ceilings.lock().expect("ceilings poisoned");
                            let c = &mut ceil[self.cur_obj as usize];
                            if now < g.outage_from {
                                *c = (*c).max(seq);
                            } else if now > g.outage_until
                                && g.restored.contains(&node)
                                && seq <= *c
                            {
                                // A restored replica answered with data
                                // from before its outage: the catch-up
                                // guard dropped on a stale image.
                                o.stale_post += 1;
                            }
                        }
                    }
                    None => o.torn += 1,
                },
                None => o.aborts += 1,
            }
        } else {
            o.aborts += 1;
        }
        drop(o);
        if matches!(self.mech, ReadMechanism::OhRam { .. }) {
            // Relay the confirm to whichever replica answered; its ack is
            // discarded by the `inflight` filter (fire-and-forget, and the
            // replica may well crash before acking).
            let node = self.replicas[self.cur_replica].node();
            let buf = self.buf(api);
            let tag = tag_board_addr(api.config().memory_bytes as u64);
            api.issue_write(node, tag, buf, 8);
        }
        self.issue_next(api);
    }

    fn on_wake(&mut self, api: &mut CoreApi<'_>) {
        let wq = self
            .pending
            .pop_front()
            .expect("wake without an armed timer");
        if self.inflight == Some(wq) {
            // The live attempt's timer fired: its replica is (or was)
            // down. Re-issue the same object at the next replica.
            self.inflight = None;
            self.outcome.lock().expect("outcome poisoned").failovers += 1;
            self.cur_replica = (self.cur_replica + 1) % self.replicas.len();
            self.issue_attempt(api);
        }
        // Anything else is a stale timer of an attempt that completed.
    }
}

/// One seed-derived kill-a-node schedule: the torture harness's racing
/// writers, replayed identically per replica of a [`ReplicatedStore`],
/// while the fault plan crashes the first replica site for the middle
/// third of the run. Readers rotate replicas per operation and fail over
/// on [`CRASH_TIMEOUT`]; `tm` [`None`] runs the raw-read control.
fn crash_race_threaded(
    tm: Option<TortureMech>,
    nodes: usize,
    seed: u64,
    threads: usize,
) -> Outcome {
    let payload = [208u32, 480, 1008][(seed % 3) as usize];
    let (mech, layout, writer_layout, cc_mode, spec_mode) = match tm {
        Some(tm) => tm.setup(payload),
        None => (
            ReadMechanism::Raw,
            StoreLayout::Clean,
            WriterLayout::Clean,
            CcMode::Occ,
            SpecMode::Speculative,
        ),
    };
    let builder = ScenarioBuilder::new()
        .configure(move |cfg| {
            cfg.lightsabres.cc_mode = cc_mode;
            cfg.lightsabres.spec_mode = spec_mode;
        })
        .seed(seed)
        .nodes(nodes)
        .shards(nodes)
        .threads(threads);
    let topo = builder.config().topology.clone();
    let rack = builder.config().fabric.topology;
    let store_nodes = topo.store_nodes();
    let k = CRASH_REPLICATION.min(store_nodes.len());
    let sites = replica_sites(&store_nodes, k, rack);
    let builder = builder.fault(FaultPlan::new().crash_restore(
        sites[0],
        Time::from_us(10),
        Time::from_us(20),
    ));
    let (mut scenario, store) = builder.replicated_store(&sites, layout, payload, 12);
    let outcome = Arc::new(Mutex::new(Outcome::default()));
    for (i, &rnode) in topo.reader_nodes().iter().enumerate() {
        for core in 0..2 {
            let replicas = store.replicas().to_vec();
            let outcome = Arc::clone(&outcome);
            let start = (2 * i + core) % k;
            scenario = scenario.reader(rnode, core, move |_| {
                Box::new(CheckedFailoverReader::new(
                    mech,
                    replicas,
                    start,
                    outcome,
                    tm.is_none(),
                ))
            });
        }
    }
    // Identical writer partitions per site: each replica replays the same
    // deterministic update schedule, so every replica is independently
    // consistent and a reader may verify whichever one serves it.
    let chunk = [3usize, 4, 6][((seed / 3) % 3) as usize];
    for replica in store.replicas() {
        for (w, entries) in replica.object_entries().chunks(chunk).enumerate() {
            let mut writer = Writer::new(entries.to_vec(), payload, writer_layout, Time::ZERO);
            if cc_mode == CcMode::Locking {
                writer = writer.respecting_reader_locks();
            }
            scenario = scenario.workload(replica.node() as usize, w, Box::new(writer));
        }
    }
    scenario.run_for(Time::from_us(30));
    let o = outcome.lock().expect("outcome poisoned");
    o.clone()
}

#[test]
fn torture_kill_a_node_never_tears_on_surviving_replicas() {
    // 32 seeded kill-a-node schedules, node counts cycling 2..=8,
    // mechanisms rotating so each of the six gets 5+ genuinely different
    // crash schedules. No mechanism may deliver a torn image as atomic —
    // before, during, or after the outage, from any replica.
    let results = Sweep::over(0u64..32).map(|&seed| {
        let nodes = 2 + (seed as usize % 7);
        let tm = TortureMech::ALL[(seed % 6) as usize];
        (
            tm,
            nodes,
            seed,
            crash_race_threaded(Some(tm), nodes, seed, 1),
        )
    });
    let mut per_mech: std::collections::HashMap<TortureMech, Outcome> =
        std::collections::HashMap::new();
    for (tm, nodes, seed, o) in &results {
        assert_eq!(
            o.torn, 0,
            "{tm:?} on {nodes} nodes with a crash (seed {seed}): {} torn objects \
             delivered as atomic (of {} verified, {} aborts, {} failovers)",
            o.torn, o.verified, o.aborts, o.failovers
        );
        assert!(
            o.verified > 10,
            "{tm:?} on {nodes} nodes with a crash (seed {seed}): too few successes: {o:?}"
        );
        let e = per_mech.entry(*tm).or_default();
        e.verified += o.verified;
        e.torn += o.torn;
        e.aborts += o.aborts;
        e.failovers += o.failovers;
    }
    for tm in TortureMech::ALL {
        let o = &per_mech[&tm];
        if tm.is_abort_free() {
            assert_eq!(
                o.aborts, 0,
                "{tm:?}: aborted despite being wait-free by construction: {o:?}"
            );
        } else {
            assert!(
                o.aborts > 0,
                "{tm:?}: no conflicts in any of its crash schedules — the \
                 quadrant is not racing: {o:?}"
            );
        }
        assert!(
            o.failovers > 0,
            "{tm:?}: no failovers in any of its crash schedules — the crash \
             never bit: {o:?}"
        );
    }
}

#[test]
fn torture_kill_a_node_raw_control_still_tears() {
    // The control: the same crash schedules with the mechanism stripped
    // out must produce torn reads, or the quadrant above proves nothing.
    let mut torn = 0u64;
    let mut failovers = 0u64;
    for seed in 0..4u64 {
        let o = crash_race_threaded(None, 8, seed, 1);
        torn += o.torn;
        failovers += o.failovers;
    }
    assert!(
        torn > 0,
        "raw reads never tore on the kill-a-node quadrant — it is not \
         generating real races"
    );
    assert!(
        failovers > 0,
        "the raw control never failed over — the crash never bit"
    );
}

#[test]
fn torture_kill_a_node_outcomes_are_thread_invariant() {
    // A crash-laden 8-node schedule per mechanism, replayed at worker-
    // thread counts {1, 2, 8}: the outage, every failover, and every
    // conflict must be untouched by how shards map onto OS threads.
    for (tm, seed) in [
        (TortureMech::Occ, 12u64),
        (TortureMech::NoSpec, 13),
        (TortureMech::Locking, 14),
        (TortureMech::PerCl, 15),
        (TortureMech::WfRegister, 18),
        (TortureMech::OhRam, 19),
    ] {
        let serial = crash_race_threaded(Some(tm), 8, seed, 1);
        assert!(
            serial.verified > 0,
            "{tm:?} (seed {seed}): no progress in the serial run"
        );
        for threads in [2usize, 8] {
            assert_eq!(
                serial,
                crash_race_threaded(Some(tm), 8, seed, threads),
                "{tm:?} (seed {seed}): {threads} worker threads changed the \
                 crash schedule"
            );
        }
    }
}

// ---------------------------------------------------------------------
// The kill-a-leaf quadrant
// ---------------------------------------------------------------------

/// When leaf 2 dies and comes back (whole-machine semantics: its writers
/// freeze, its images go stale).
const LEAF_FROM: Time = Time::from_us(10);
const LEAF_UNTIL: Time = Time::from_us(30);

/// Objects per replica — few enough that every object's pattern seq
/// advances far past any residual catch-up lag during the outage, so the
/// freshness check has real teeth.
const LEAF_OBJECTS: u64 = 4;

/// One seed-derived kill-a-leaf schedule on the 8-node radix-2 fat tree:
/// replica sites `[4, 6, 5]`, so the leaf-2 outage takes down two of the
/// three *together* — writers and all. Each site runs a
/// [`RecoveringWriter`] maintaining a [`WriteLog`]; on restoration the
/// stale siblings bounce off each other's catch-up guards onto the
/// surviving site 6, pull its log over the fabric, and replay the missed
/// range. Readers rotate replicas, fail over on [`CRASH_TIMEOUT`], retry
/// guard refusals at the next replica, and hold two invariants at once:
/// never a torn image (as everywhere), and never pre-outage data from a
/// restored site once its guard drops ([`StaleGuard`]).
fn leaf_race_threaded(tm: TortureMech, seed: u64, threads: usize) -> (Outcome, RecoveryReport) {
    let payload = [208u32, 480, 1008][(seed % 3) as usize];
    let (mech, layout, writer_layout, cc_mode, spec_mode) = tm.setup(payload);
    let builder = ScenarioBuilder::new()
        .configure(move |cfg| {
            cfg.lightsabres.cc_mode = cc_mode;
            cfg.lightsabres.spec_mode = spec_mode;
        })
        .seed(seed)
        .nodes(8)
        .fat_tree(2, 2)
        .shards(8)
        .threads(threads);
    let topo = builder.config().topology.clone();
    let rack = builder.config().fabric.topology;
    let sites = replica_sites(&topo.store_nodes(), CRASH_REPLICATION, rack);
    assert_eq!(sites, vec![4, 6, 5], "leaf-spread placement changed");
    let builder = builder.fault(FaultPlan::new().leaf_outage(rack, 2, LEAF_FROM, LEAF_UNTIL));
    let (mut scenario, store) = builder.replicated_store(&sites, layout, payload, LEAF_OBJECTS);
    // Radix-2 leaves cover node pairs: leaf 2 = {4, 5}.
    let restored: Vec<u8> = sites
        .iter()
        .filter(|&&s| s / 2 == 2)
        .map(|&s| s as u8)
        .collect();
    assert_eq!(restored.len(), 2, "the outage must hit two replica sites");
    let ceilings = Arc::new(Mutex::new(vec![0u64; LEAF_OBJECTS as usize]));
    let outcome = Arc::new(Mutex::new(Outcome::default()));
    for (i, &rnode) in topo.reader_nodes().iter().enumerate() {
        for core in 0..2 {
            let replicas = store.replicas().to_vec();
            let outcome = Arc::clone(&outcome);
            let guard = StaleGuard {
                ceilings: Arc::clone(&ceilings),
                restored: restored.clone(),
                outage_from: LEAF_FROM,
                outage_until: LEAF_UNTIL,
            };
            let start = (2 * i + core) % sites.len();
            scenario = scenario.reader(rnode, core, move |_| {
                Box::new(
                    CheckedFailoverReader::new(mech, replicas, start, outcome, false)
                        .with_stale_guard(guard),
                )
            });
        }
    }
    let log = WriteLog::new(Addr::new(1 << 20), 2048);
    for &site in &sites {
        let peers: Vec<u8> = sites
            .iter()
            .filter(|&&p| p != site)
            .map(|&p| p as u8)
            .collect();
        let mut writer = RecoveringWriter::new(
            store.object_entries(),
            payload,
            writer_layout,
            // Replay runs think-free, so a positive think pause is the
            // convergence margin (see the recovery module docs).
            Time::from_ns(500),
            log,
            peers,
            Addr::new(2 << 20),
            // Above the lag floor of the largest (1008 B) payload, so
            // every schedule's guard provably drops before the horizon —
            // the freshness check needs post-catch-up completions.
            16,
        );
        if cc_mode == CcMode::Locking {
            writer = writer.respecting_reader_locks();
        }
        scenario = scenario.workload(site, 0, Box::new(writer));
    }
    let report = scenario.run_for(Time::from_us(55));
    let o = outcome.lock().expect("outcome poisoned").clone();
    (o, report.recovery())
}

#[test]
fn torture_kill_a_leaf_catch_up_never_serves_stale_or_torn_reads() {
    // 32 seeded kill-a-leaf schedules, mechanisms rotating so each of the
    // six gets 5+ genuinely different correlated-outage schedules. Per
    // schedule: no torn image, no pre-outage data from a restored site
    // after its guard drops, and the recovery machinery demonstrably ran
    // (both restored sites pulled, bounced off their equally-stale
    // sibling, and replayed missed updates).
    let results = Sweep::over(0u64..32).map(|&seed| {
        let tm = TortureMech::ALL[(seed % 6) as usize];
        (tm, seed, leaf_race_threaded(tm, seed, 1))
    });
    let mut per_mech: std::collections::HashMap<TortureMech, Outcome> =
        std::collections::HashMap::new();
    for (tm, seed, (o, r)) in &results {
        assert_eq!(
            o.torn, 0,
            "{tm:?} under a leaf outage (seed {seed}): {} torn objects delivered \
             as atomic (of {} verified, {} aborts, {} failovers, {} refusals)",
            o.torn, o.verified, o.aborts, o.failovers, o.refusals
        );
        assert_eq!(
            o.stale_post, 0,
            "{tm:?} under a leaf outage (seed {seed}): a restored replica served \
             pre-outage data after catch-up: {o:?}"
        );
        assert!(
            o.verified > 10,
            "{tm:?} under a leaf outage (seed {seed}): too few successes: {o:?}"
        );
        assert!(
            r.catch_up_pulls >= 2,
            "{tm:?} (seed {seed}): the restored sites never pulled a peer log: {r:?}"
        );
        assert!(
            r.catch_up_refused > 0,
            "{tm:?} (seed {seed}): the equally-stale siblings never bounced: {r:?}"
        );
        assert!(
            r.replays_applied > 0,
            "{tm:?} (seed {seed}): catch-up replayed nothing: {r:?}"
        );
        assert!(
            r.catch_up_ns > 0,
            "{tm:?} (seed {seed}): no staleness window ever closed — the \
             guard never dropped, so the freshness check saw nothing: {r:?}"
        );
        let e = per_mech.entry(*tm).or_default();
        e.verified += o.verified;
        e.torn += o.torn;
        e.aborts += o.aborts;
        e.failovers += o.failovers;
        e.refusals += o.refusals;
    }
    for tm in TortureMech::ALL {
        let o = &per_mech[&tm];
        if tm.is_abort_free() {
            assert_eq!(
                o.aborts, 0,
                "{tm:?}: aborted despite being wait-free by construction \
                 (guard refusals must not count as aborts): {o:?}"
            );
        }
        assert!(
            o.failovers > 0,
            "{tm:?}: no failovers in any of its leaf schedules — the outage \
             never bit: {o:?}"
        );
        assert!(
            o.refusals > 0,
            "{tm:?}: no reader ever met a catch-up guard — the staleness \
             window went unobserved: {o:?}"
        );
    }
}

#[test]
fn torture_kill_a_leaf_outcomes_are_thread_invariant() {
    // A recovery-laden schedule per engine mode (plus a wait-free one),
    // replayed at worker-thread counts {1, 2, 8}: the outage, the sibling
    // bounces, every replay and every refusal must be untouched by how
    // shards map onto OS threads — including the shared freshness oracle,
    // whose max-merge updates are commutative by construction.
    for (tm, seed) in [
        (TortureMech::Occ, 20u64),
        (TortureMech::Locking, 21),
        (TortureMech::WfRegister, 22),
    ] {
        let serial = leaf_race_threaded(tm, seed, 1);
        assert!(
            serial.0.verified > 0,
            "{tm:?} (seed {seed}): no progress in the serial run"
        );
        for threads in [2usize, 8] {
            assert_eq!(
                serial,
                leaf_race_threaded(tm, seed, threads),
                "{tm:?} (seed {seed}): {threads} worker threads changed the \
                 recovery schedule"
            );
        }
    }
}
