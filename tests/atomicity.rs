//! End-to-end atomicity soundness: the paper's core guarantee, checked on
//! the full simulated system.
//!
//! **Invariant**: any read that completes as *atomic* — whether checked by
//! LightSABRes in hardware (OCC or locking, speculative or not) or by the
//! software mechanisms (per-CL versions, checksums) — returns bytes equal
//! to a single committed snapshot of the object, under racing writers.
//!
//! Writers store recognizable patterns ([`pattern_payload`]); a read is a
//! consistent snapshot iff [`verify_payload`] accepts it. The verifying
//! reader asserts this on *every* successful completion, so any torn read
//! that slips past an atomicity mechanism fails the test immediately.

use std::cell::RefCell;
use std::rc::Rc;

use sabres::prelude::*;

/// Counts verified/torn/aborted reads, shared with the reader workload.
#[derive(Debug, Default)]
struct Outcome {
    verified: u64,
    torn: u64,
    aborts: u64,
}

/// A reader that cross-checks every "atomic" completion against the
/// writer pattern.
struct CheckedReader {
    mech: ReadMechanism,
    store: ObjectStore,
    outcome: Rc<RefCell<Outcome>>,
    cur_obj: u64,
}

impl CheckedReader {
    fn new(mech: ReadMechanism, store: ObjectStore, outcome: Rc<RefCell<Outcome>>) -> Self {
        CheckedReader {
            mech,
            store,
            outcome,
            cur_obj: 0,
        }
    }

    fn wire(&self) -> u32 {
        self.store.slot_bytes() as u32
    }

    fn buf(&self, api: &CoreApi<'_>) -> Addr {
        Addr::new(api.config().memory_bytes as u64 / 2 + api.core() as u64 * 64 * 1024)
    }

    fn issue(&mut self, api: &mut CoreApi<'_>) {
        self.cur_obj = api.rng().below(self.store.n_objects());
        let addr = self.store.object_addr(self.cur_obj);
        let buf = self.buf(api);
        let wire = self.wire();
        api.issue(self.mech.op(), self.store.node(), addr, buf, wire, 0);
    }

    /// Validates the image under the mechanism; `Some(payload)` when the
    /// mechanism declares the read atomic.
    fn extract(&self, image: &[u8]) -> Option<Vec<u8>> {
        let payload = self.store.payload() as usize;
        match self.mech {
            ReadMechanism::Sabre => Some(CleanLayout::payload_of(image, payload).to_vec()),
            ReadMechanism::PerClValidate { .. } => {
                PerClLayout::validate_and_strip(image, payload).ok()
            }
            ReadMechanism::ChecksumValidate { .. } => {
                sabres::sw::ChecksumLayout::validate(image, payload)
                    .ok()
                    .map(<[u8]>::to_vec)
            }
            ReadMechanism::Raw => unreachable!("raw reads claim no atomicity"),
        }
    }
}

impl Workload for CheckedReader {
    fn on_start(&mut self, api: &mut CoreApi<'_>) {
        self.issue(api);
    }

    fn on_completion(&mut self, api: &mut CoreApi<'_>, cq: CqEntry) {
        let mut o = self.outcome.borrow_mut();
        if cq.success {
            let image = api.read_local(self.buf(api), self.wire() as usize);
            match self.extract(&image) {
                Some(payload) => {
                    if verify_payload(self.cur_obj, &payload).is_some() {
                        o.verified += 1;
                    } else {
                        o.torn += 1;
                    }
                }
                // The software check itself rejected the image.
                None => o.aborts += 1,
            }
        } else {
            o.aborts += 1;
        }
        drop(o);
        self.issue(api);
    }
}

/// Runs `readers` checked readers against continuous writers for `dur_us`
/// of simulated time and returns the outcome.
fn race(
    mech: ReadMechanism,
    layout: StoreLayout,
    writer_layout: WriterLayout,
    cc_mode: CcMode,
    spec_mode: SpecMode,
    payload: u32,
    seed: u64,
) -> Outcome {
    let (scenario, store) = ScenarioBuilder::new()
        .configure(|cfg| {
            cfg.lightsabres.cc_mode = cc_mode;
            cfg.lightsabres.spec_mode = spec_mode;
        })
        .seed(seed)
        .warmed_store(1, layout, payload, Some(24));

    let outcome = Rc::new(RefCell::new(Outcome::default()));
    let mut scenario = scenario;
    for core in 0..4 {
        let (store, outcome) = (store.clone(), Rc::clone(&outcome));
        scenario = scenario.reader(0, core, move |_| {
            Box::new(CheckedReader::new(mech, store, outcome))
        });
    }
    // Aggressive writers over small CREW subsets maximize conflicts.
    let entries = store.object_entries();
    for (w, chunk) in entries.chunks(6).enumerate() {
        let mut writer = Writer::new(chunk.to_vec(), payload, writer_layout, Time::ZERO);
        if cc_mode == CcMode::Locking {
            writer = writer.respecting_reader_locks();
        }
        scenario = scenario.workload(1, w, Box::new(writer));
    }
    scenario.run_for(Time::from_us(120));
    let o = outcome.borrow();
    Outcome {
        verified: o.verified,
        torn: o.torn,
        aborts: o.aborts,
    }
}

fn assert_sound(mech: ReadMechanism, o: &Outcome) {
    assert_eq!(
        o.torn, 0,
        "{mech:?}: {} torn objects delivered as atomic (of {} verified, {} aborts)",
        o.torn, o.verified, o.aborts
    );
    assert!(o.verified > 50, "{mech:?}: too few successes: {o:?}");
    assert!(
        o.aborts > 0,
        "{mech:?}: no conflicts at all — the race harness is not racing: {o:?}"
    );
}

#[test]
fn sabre_occ_speculative_reads_are_never_torn() {
    for seed in [1, 2, 3] {
        let o = race(
            ReadMechanism::Sabre,
            StoreLayout::Clean,
            WriterLayout::Clean,
            CcMode::Occ,
            SpecMode::Speculative,
            480,
            seed,
        );
        assert_sound(ReadMechanism::Sabre, &o);
    }
}

#[test]
fn sabre_occ_no_speculation_reads_are_never_torn() {
    let o = race(
        ReadMechanism::Sabre,
        StoreLayout::Clean,
        WriterLayout::Clean,
        CcMode::Occ,
        SpecMode::ReadVersionFirst,
        480,
        7,
    );
    assert_sound(ReadMechanism::Sabre, &o);
}

#[test]
fn sabre_destination_locking_reads_are_never_torn() {
    let o = race(
        ReadMechanism::Sabre,
        StoreLayout::Clean,
        WriterLayout::Clean,
        CcMode::Locking,
        SpecMode::Speculative,
        480,
        11,
    );
    assert_eq!(o.torn, 0, "locking mode delivered torn objects: {o:?}");
    assert!(o.verified > 50, "too few successes: {o:?}");
}

#[test]
fn sabre_large_objects_are_never_torn() {
    let o = race(
        ReadMechanism::Sabre,
        StoreLayout::Clean,
        WriterLayout::Clean,
        CcMode::Occ,
        SpecMode::Speculative,
        4000,
        13,
    );
    assert_sound(ReadMechanism::Sabre, &o);
}

#[test]
fn percl_validated_reads_are_never_torn() {
    for seed in [1, 5] {
        let o = race(
            ReadMechanism::PerClValidate { payload: 480 },
            StoreLayout::PerCl,
            WriterLayout::PerCl,
            CcMode::Occ,
            SpecMode::Speculative,
            480,
            seed,
        );
        assert_sound(ReadMechanism::PerClValidate { payload: 480 }, &o);
    }
}

#[test]
fn raw_reads_do_tear_under_conflict() {
    // The control experiment: with no atomicity mechanism, the same racing
    // harness must produce torn reads — otherwise the other tests prove
    // nothing.
    let (scenario, store) =
        ScenarioBuilder::new()
            .seed(99)
            .warmed_store(1, StoreLayout::Clean, 480, Some(8));
    let outcome = Rc::new(RefCell::new(Outcome::default()));

    /// Raw variant of the checked reader: counts torn images instead of
    /// asserting.
    struct RawReader(CheckedReader);
    impl Workload for RawReader {
        fn on_start(&mut self, api: &mut CoreApi<'_>) {
            self.0.issue(api);
        }
        fn on_completion(&mut self, api: &mut CoreApi<'_>, _cq: CqEntry) {
            let image = api.read_local(self.0.buf(api), self.0.wire() as usize);
            let payload = CleanLayout::payload_of(&image, 480);
            let mut o = self.0.outcome.borrow_mut();
            if verify_payload(self.0.cur_obj, payload).is_some() {
                o.verified += 1;
            } else {
                o.torn += 1;
            }
            drop(o);
            self.0.issue(api);
        }
    }

    let mut scenario = scenario;
    for core in 0..4 {
        let (store, outcome) = (store.clone(), Rc::clone(&outcome));
        scenario = scenario.reader(0, core, move |_| {
            Box::new(RawReader(CheckedReader::new(
                ReadMechanism::Raw,
                store,
                outcome,
            )))
        });
    }
    for (w, chunk) in store.object_entries().chunks(2).enumerate() {
        scenario = scenario.workload(
            1,
            w,
            Box::new(Writer::new(
                chunk.to_vec(),
                480,
                WriterLayout::Clean,
                Time::ZERO,
            )),
        );
    }
    scenario.run_for(Time::from_us(120));
    let o = outcome.borrow();
    assert!(
        o.torn > 0,
        "raw reads never tore — the harness is not generating real races"
    );
}
