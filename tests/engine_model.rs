//! Model-based property test of the LightSABRes engine.
//!
//! The discrete-event cluster exercises realistic schedules; this harness
//! exercises *adversarial* ones. It drives the sans-IO engine directly
//! against a functional memory, interleaving, under proptest control:
//!
//! * engine issue slots (pulling block reads in order),
//! * reply deliveries in **arbitrary order** (the memory system may reorder
//!   anything),
//! * writer steps (odd/even version protocol, one block store at a time,
//!   each raising an invalidation),
//! * spurious eviction invalidations for random blocks.
//!
//! **Invariant**: whenever the engine reports `atomic = true`, the payload
//! assembled from the replies (each sampled at its delivery instant) is a
//! single consistent snapshot. Liveness: every SABRe completes.

use proptest::prelude::*;

use sabres::core::{Action, BlockIssue, IssueKind, LightSabres, SabreId};
use sabres::mem::BLOCK_BYTES;
use sabres::prelude::*;

/// One writer's position inside an update.
struct WriterModel {
    base: Addr,
    payload: usize,
    seq: u64,
    /// None: idle; Some(i): version is odd, next store is chunk i.
    step: Option<usize>,
}

impl WriterModel {
    fn new(base: Addr, payload: usize) -> Self {
        WriterModel {
            base,
            payload,
            seq: 1,
            step: None,
        }
    }

    /// Performs one store; returns the block to invalidate.
    fn step(&mut self, mem: &mut NodeMemory) -> BlockAddr {
        match self.step {
            None => {
                let v = VersionWord::new(mem.read_u64(self.base));
                v.locked().store(mem, self.base);
                self.step = Some(0);
                self.base.block()
            }
            Some(i) => {
                let chunks = sabres::rack::workloads::update_chunks(
                    WriterLayout::Clean,
                    self.base,
                    0,
                    self.seq,
                    self.payload,
                    mem.read_u64(self.base) - 1,
                );
                if i < chunks.len() {
                    let (addr, data) = &chunks[i];
                    mem.write(*addr, data);
                    self.step = Some(i + 1);
                    addr.block()
                } else {
                    let v = mem.read_u64(self.base);
                    mem.write_u64(self.base, v + 1);
                    self.step = None;
                    self.seq += 1;
                    self.base.block()
                }
            }
        }
    }
}

/// Outcome of one modeled SABRe.
#[derive(Debug)]
struct ModelOutcome {
    atomic: bool,
    /// Payload as the requester would assemble it from the replies.
    delivered: Vec<u8>,
}

/// Drives one SABRe through the engine under the given schedule.
///
/// `schedule` bytes pick the next actor: writer step, reply delivery,
/// engine pump, or spurious eviction.
fn run_model(payload: usize, schedule: &[u8], spec: SpecMode) -> ModelOutcome {
    let cfg = sabres::core::LightSabresConfig {
        spec_mode: spec,
        ..Default::default()
    };
    let mut engine = LightSabres::new(cfg);
    let object_bytes = CleanLayout::object_bytes(payload);
    let mut mem = NodeMemory::new(object_bytes.max(4096));
    let base = Addr::new(0);
    CleanLayout::init(&mut mem, base, &pattern_payload(0, 0, payload));
    let mut writer = WriterModel::new(base, payload);

    let id = SabreId {
        src_node: 0,
        src_pipe: 0,
        transfer: 1,
    };
    let slot = engine
        .register(id, base, object_bytes as u32, 0)
        .expect("fresh engine accepts registration");
    let blocks = object_bytes / BLOCK_BYTES;
    for _ in 0..blocks {
        engine.on_data_request(id).expect("requests in range");
    }

    let mut outstanding: Vec<BlockIssue> = Vec::new();
    let mut image = vec![0u8; object_bytes];
    let mut done: Option<bool> = None;
    let mut cursor = 0usize;
    let pick = |n: usize, k: usize| schedule.get(k).map_or(0, |&b| b as usize % n.max(1));

    let mut step = 0usize;
    while done.is_none() {
        step += 1;
        assert!(step < 100_000, "model failed to make progress");
        let choice = pick(4, cursor);
        cursor += 1;
        match choice {
            // Writer makes one store and the coherence fan-out reaches the
            // engine immediately.
            0 => {
                let block = writer.step(&mut mem);
                engine.on_invalidation(block);
            }
            // Deliver one outstanding reply, chosen by the schedule (the
            // memory system reorders freely). Data is sampled *now*.
            1 if !outstanding.is_empty() => {
                let idx = pick(outstanding.len(), cursor);
                cursor += 1;
                let issue = outstanding.swap_remove(idx);
                let data = mem.read_block(issue.block);
                let actions = match issue.kind {
                    IssueKind::Data => {
                        let off = issue.block_index as usize * BLOCK_BYTES;
                        image[off..off + BLOCK_BYTES].copy_from_slice(&data);
                        engine.on_block_reply(issue.slot, issue.block_index, &data)
                    }
                    IssueKind::Validate => engine.on_validate_reply(issue.slot, &data),
                    k => panic!("unexpected issue kind in OCC model: {k:?}"),
                };
                for a in actions {
                    let Action::Complete { atomic, .. } = a;
                    done = Some(atomic);
                }
            }
            // Engine pump: pull the next issue if any.
            2 => {
                if let Some(issue) = engine.next_issue() {
                    assert_eq!(issue.slot, slot);
                    outstanding.push(issue);
                }
            }
            // Spurious eviction invalidation on a random block of the range.
            3 => {
                let b = pick(blocks, cursor) as u64;
                cursor += 1;
                engine.on_invalidation(BlockAddr::from_index(b));
            }
            // No reply outstanding: fall through to a pump.
            _ => {
                if let Some(issue) = engine.next_issue() {
                    outstanding.push(issue);
                }
            }
        }
        // Starvation guard: once the schedule bytes run out, drain fairly.
        if cursor >= schedule.len() {
            while done.is_none() {
                if let Some(issue) = engine.next_issue() {
                    outstanding.push(issue);
                } else if let Some(issue) = outstanding.pop() {
                    let data = mem.read_block(issue.block);
                    let actions = match issue.kind {
                        IssueKind::Data => {
                            let off = issue.block_index as usize * BLOCK_BYTES;
                            image[off..off + BLOCK_BYTES].copy_from_slice(&data);
                            engine.on_block_reply(issue.slot, issue.block_index, &data)
                        }
                        IssueKind::Validate => engine.on_validate_reply(issue.slot, &data),
                        k => panic!("unexpected issue kind: {k:?}"),
                    };
                    for a in actions {
                        let Action::Complete { atomic, .. } = a;
                        done = Some(atomic);
                    }
                } else {
                    panic!("engine stalled with nothing outstanding");
                }
            }
        }
    }

    ModelOutcome {
        atomic: done.expect("loop exits on completion"),
        delivered: CleanLayout::payload_of(&image, payload).to_vec(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The core soundness theorem, adversarially scheduled.
    #[test]
    fn atomic_sabres_deliver_consistent_snapshots(
        payload in 48usize..2048,
        schedule in proptest::collection::vec(any::<u8>(), 64..2048),
        spec in prop_oneof![Just(SpecMode::Speculative), Just(SpecMode::ReadVersionFirst)],
    ) {
        let outcome = run_model(payload, &schedule, spec);
        if outcome.atomic {
            prop_assert!(
                verify_payload(0, &outcome.delivered).is_some(),
                "engine reported atomic but payload is torn: {:?}…",
                &outcome.delivered[..16.min(outcome.delivered.len())]
            );
        }
    }

    /// Without writers *or* evictions, every SABRe succeeds, whatever the
    /// reply reordering.
    #[test]
    fn quiescent_sabres_always_succeed(
        payload in 48usize..2048,
        schedule in proptest::collection::vec(any::<u8>(), 64..1024),
    ) {
        // Remap writer (0) and eviction (3) choices onto pump choices so
        // only reply reorderings remain.
        let peaceful: Vec<u8> = schedule
            .iter()
            .map(|&b| if b % 4 == 0 || b % 4 == 3 { b & !3 | 2 } else { b })
            .collect();
        let outcome = run_model(payload, &peaceful, SpecMode::Speculative);
        prop_assert!(outcome.atomic, "quiescent SABRe failed");
        prop_assert!(verify_payload(0, &outcome.delivered).is_some());
    }

    /// Eviction false alarms may conservatively abort a SABRe inside its
    /// window of vulnerability (Fig. 3), but can never corrupt one: with
    /// no writers, whatever the engine *delivers as atomic* is the
    /// original object.
    #[test]
    fn evictions_never_corrupt(
        payload in 48usize..2048,
        schedule in proptest::collection::vec(any::<u8>(), 64..1024),
    ) {
        // Remap only writer choices (0) onto evictions (3): reorderings +
        // eviction storms, no data changes.
        let eviction_storm: Vec<u8> = schedule
            .iter()
            .map(|&b| if b % 4 == 0 { b | 3 } else { b })
            .collect();
        let outcome = run_model(payload, &eviction_storm, SpecMode::Speculative);
        if outcome.atomic {
            prop_assert_eq!(
                verify_payload(0, &outcome.delivered), Some(0),
                "eviction-only run delivered modified data"
            );
        }
    }
}
