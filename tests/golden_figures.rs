//! Golden-output regression of the whole figure harness.
//!
//! `tests/golden/figures.txt` is the committed stdout of
//! `all_figures --quick`. This test regenerates every figure in-process
//! through the same [`sabre_bench::render_all_figures`] entry point the
//! binary uses and diffs the result line by line, so *any* change to any
//! experiment's numbers — an event-ordering drift in the cluster, a
//! calibration tweak, a formatting change — surfaces as a figure diff
//! rather than slipping through shape assertions. The output is
//! deterministic across thread counts, optimization levels and shard
//! counts, which is exactly what the scenario/sweep determinism tests pin
//! down; when an intentional change shifts numbers, regenerate with:
//!
//! ```text
//! cargo run --release --bin all_figures -- --quick > tests/golden/figures.txt
//! ```

use sabre_bench::{render_all_figures, RunOpts};

#[test]
fn all_figures_quick_fingerprint_is_thread_invariant() {
    // The whole harness — every experiment, every sweep, the thread-driven
    // sharded cluster loop inside fig_scale — rendered serially and with a
    // worker pool must produce the same bytes. This is the end-to-end
    // parallel-vs-serial fingerprint; the golden diff below then anchors
    // those bytes to the committed output.
    let serial = render_all_figures(
        RunOpts {
            quick: true,
            threads: Some(1),
        },
        |_, _| {},
    );
    let parallel = render_all_figures(
        RunOpts {
            quick: true,
            threads: Some(2),
        },
        |_, _| {},
    );
    assert!(
        serial == parallel,
        "figure fingerprints diverged between 1 and 2 worker threads"
    );
}

#[test]
fn all_figures_quick_matches_golden_output() {
    let golden = include_str!("golden/figures.txt");
    let live = render_all_figures(RunOpts::quick(), |_, _| {});
    if live != golden {
        // Render a readable first-divergence report instead of dumping
        // two 150-line blobs.
        for (i, (g, l)) in golden.lines().zip(live.lines()).enumerate() {
            assert_eq!(
                g,
                l,
                "first figure divergence at golden line {} — if intentional, \
                 regenerate tests/golden/figures.txt (see test docs)",
                i + 1
            );
        }
        panic!(
            "figure output length changed: golden {} lines, live {} lines — \
             if intentional, regenerate tests/golden/figures.txt",
            golden.lines().count(),
            live.lines().count()
        );
    }
}
