//! Scenario-API equivalence: a scenario must be *sugar*, not a new
//! semantics. Building an experiment with [`ScenarioBuilder`] has to
//! replay bit-identically to the legacy hand-wired [`Cluster`]
//! construction performing the same steps with the same seed — this file
//! is the one place outside `sabre-rack` where direct `Cluster::new`
//! wiring is still welcome, precisely to pin that equivalence down. It
//! also pins the [`Sweep`] contract: parallel execution returns results in
//! input order, identical to a serial run.

use sabres::core::SpecMode;
use sabres::prelude::*;

/// The hand-wired construction of one Table-1 quadrant (destination OCC:
/// one SABRe reader over a 512-object clean store), exactly as the bench
/// harness built it before the Scenario API existed.
fn table1_dest_occ_legacy(iters: u64) -> (u64, Option<f64>) {
    let mut cluster = Cluster::new(ClusterConfig::default());
    let store = ObjectStore::new(1, Addr::new(0), StoreLayout::Clean, 1024, 512);
    store.init(cluster.node_memory_mut(1));
    let wire = StoreLayout::Clean.object_bytes(1024) as u32;
    cluster.add_workload(
        0,
        0,
        spec()
            .store(1)
            .payload(1024)
            .mechanism(ReadMechanism::Sabre)
            .wire(wire)
            .build(&store.object_addrs()),
    );
    cluster.run_for(Time::from_us(20 * iters));
    let m = cluster.metrics(0, 0);
    (m.ops, m.latency.mean())
}

/// The same quadrant as a scenario.
fn table1_dest_occ_scenario(iters: u64) -> (u64, Option<f64>) {
    let (scenario, _store) = ScenarioBuilder::new().store(1, StoreLayout::Clean, 1024, Some(512));
    let wire = StoreLayout::Clean.object_bytes(1024) as u32;
    let report = scenario
        .reader_spec(
            0,
            0,
            spec()
                .store(1)
                .payload(1024)
                .mechanism(ReadMechanism::Sabre)
                .wire(wire),
        )
        .run_for(Time::from_us(20 * iters));
    let m = report.core(0, 0);
    (m.ops, m.latency.mean())
}

#[test]
fn table1_quadrant_scenario_matches_legacy_bitwise() {
    let legacy = table1_dest_occ_legacy(10);
    let scenario = table1_dest_occ_scenario(10);
    assert!(legacy.0 > 0, "legacy run must complete ops");
    assert_eq!(
        legacy, scenario,
        "same seed must give identical ops and mean latency"
    );
    // And the *shipped* experiment (not a copy of its construction) agrees
    // too, so the equivalence cannot silently drift from the harness.
    let shipped = sabre_bench::experiments::table1::measure(
        sabre_bench::experiments::table1::Quadrant::DestOcc,
        10,
    );
    assert_eq!(legacy.1, Some(shipped));
}

/// One fig-7a sweep point (1 KB SABRe over memory-resident raw targets),
/// hand-wired exactly as the legacy `raw_targets` scaffolding did.
fn fig7a_point_legacy(size: u32, iters: u64) -> (u64, Option<f64>) {
    let mut cfg = ClusterConfig::default();
    cfg.lightsabres.spec_mode = SpecMode::Speculative;
    let mut cluster = Cluster::new(cfg);
    let slot = (size as u64).div_ceil(64) * 64;
    let count = (16 * 1024 * 1024 / slot).clamp(1, 16_384);
    let mut targets = Vec::with_capacity(count as usize);
    {
        let mem = cluster.node_memory_mut(1);
        for i in 0..count {
            let base = Addr::new(i * slot);
            mem.write_u64(base, 0);
            targets.push(base);
        }
    }
    cluster.add_workload(
        0,
        0,
        spec()
            .store(1)
            .payload(size)
            .mechanism(ReadMechanism::Sabre)
            .build(&targets),
    );
    cluster.run_for(Time::from_us(10 * iters));
    let m = cluster.metrics(0, 0);
    (m.ops, m.latency.mean())
}

fn fig7a_point_scenario(size: u32, iters: u64) -> (u64, Option<f64>) {
    let report = ScenarioBuilder::new()
        .configure(|cfg| cfg.lightsabres.spec_mode = SpecMode::Speculative)
        .raw_region(1, size)
        .reader_spec(
            0,
            0,
            spec()
                .store(1)
                .payload(size)
                .mechanism(ReadMechanism::Sabre),
        )
        .run_for(Time::from_us(10 * iters));
    let m = report.core(0, 0);
    (m.ops, m.latency.mean())
}

#[test]
fn fig7a_point_scenario_matches_legacy_bitwise() {
    let legacy = fig7a_point_legacy(1024, 10);
    let scenario = fig7a_point_scenario(1024, 10);
    assert!(legacy.0 > 0, "legacy run must complete ops");
    assert_eq!(
        legacy, scenario,
        "same seed must give identical ops and mean latency"
    );
    // And the *shipped* experiment (not a copy of its construction) agrees
    // too, so the equivalence cannot silently drift from the harness.
    let shipped = sabre_bench::experiments::fig7a::measure(
        1024,
        ReadMechanism::Sabre,
        SpecMode::Speculative,
        10,
    );
    assert_eq!(legacy.1, Some(shipped));
}

#[test]
fn parallel_sweep_is_ordered_and_identical_to_serial() {
    let sizes = [64u32, 256, 1024, 4096];
    let point = |&size: &u32| {
        let (ops, mean) = fig7a_point_scenario(size, 5);
        (size, ops, mean)
    };
    let serial = Sweep::over(sizes).threads(1).map(point);
    let parallel = Sweep::over(sizes).threads(4).map(point);
    assert_eq!(
        serial, parallel,
        "thread count must not change any result bit"
    );
    for (i, &size) in sizes.iter().enumerate() {
        assert_eq!(parallel[i].0, size, "results must come back in input order");
    }
}

#[test]
fn warmup_window_changes_measurement_not_simulation() {
    // The windowed run simulates warmup+measure total time; its metrics
    // cover only the measurement window, while the simulated history is
    // the same as an unwindowed run of the same total duration.
    let build = || {
        let (scenario, _store) =
            ScenarioBuilder::new().store(1, StoreLayout::Clean, 1024, Some(64));
        let wire = StoreLayout::Clean.object_bytes(1024) as u32;
        scenario.reader_spec(
            0,
            0,
            spec()
                .store(1)
                .payload(1024)
                .mechanism(ReadMechanism::Sabre)
                .wire(wire),
        )
    };
    let full = build().run_for(Time::from_us(100));
    let windowed = build()
        .warmup(Time::from_us(40))
        .measure(Time::from_us(60))
        .run();
    assert_eq!(windowed.sim_time(), full.sim_time());
    assert!(windowed.core(0, 0).ops > 0);
    assert!(windowed.core(0, 0).ops < full.core(0, 0).ops);
    // Engine registrations were reset at the window boundary too.
    assert!(windowed.engine_totals(1).registered < full.engine_totals(1).registered);
    assert_eq!(
        windowed.core(0, 0).ops,
        windowed.engine_totals(1).completed_ok,
        "windowed core ops and windowed engine completions must agree"
    );
}

// ---------------------------------------------------------------------
// N-node determinism: the beyond-paper rack obeys the same contracts
// ---------------------------------------------------------------------

/// A full fingerprint of one multi-node run: per-core ops/retries/mean
/// latency plus per-node engine and pipeline counters — if any bit of
/// observable behavior changes, this changes.
fn rack_fingerprint(nodes: usize, shards: usize, seed: u64) -> Vec<String> {
    rack_fingerprint_threaded(nodes, shards, 1, seed)
}

fn rack_fingerprint_threaded(
    nodes: usize,
    shards: usize,
    threads: usize,
    seed: u64,
) -> Vec<String> {
    let builder = ScenarioBuilder::new()
        .seed(seed)
        .nodes(nodes)
        .shards(shards)
        .threads(threads);
    let topo = builder.config().topology.clone();
    let (mut scenario, store_shards) =
        builder.sharded_store(topo.store_nodes(), StoreLayout::Clean, 1024, 32);
    for (i, &rnode) in topo.reader_nodes().iter().enumerate() {
        let shard = store_shards[i % store_shards.len()].clone();
        let wire = shard.slot_bytes() as u32;
        scenario = scenario.reader_spec(
            rnode,
            0,
            spec()
                .store(shard.node() as usize)
                .payload(1024)
                .mechanism(ReadMechanism::Sabre)
                .wire(wire)
                .objects(shard.object_addrs()),
        );
    }
    let report = scenario.run_for(Time::from_us(60));
    report
        .node_reports()
        .iter()
        .map(|n| {
            format!(
                "{}:{:?}:{}:{}:{:?}:{}:{}:{}",
                n.node,
                n.role,
                n.metrics.ops,
                n.metrics.retries,
                report.core(n.node, 0).latency.mean(),
                n.r2p2.sabres_registered,
                n.engine.completed_ok,
                n.engine.completed_failed,
            )
        })
        .collect()
}

#[test]
fn same_multi_node_scenario_replays_bit_identically() {
    let a = rack_fingerprint(6, 1, 42);
    let b = rack_fingerprint(6, 1, 42);
    assert!(
        a.iter()
            .any(|s| s.contains(":Reader:") && !s.contains(":Reader:0:")),
        "at least one reader node must complete ops: {a:?}"
    );
    assert_eq!(a, b, "same seed, same rack — every bit must replay");
}

#[test]
fn sharded_event_loop_is_bit_identical_to_single_shard() {
    // The tentpole acceptance bar, on the biggest rack: 8 nodes advanced
    // as one shard, two shards, or one shard per node.
    let single = rack_fingerprint(8, 1, 7);
    assert_eq!(single, rack_fingerprint(8, 2, 7));
    assert_eq!(single, rack_fingerprint(8, 8, 7));
}

#[test]
fn thread_driven_shards_are_bit_identical_to_serial() {
    // The thread-dispatch acceptance bar: the fully sharded 8-node rack
    // driven by 1 worker, 2 workers, or one per shard replays the serial
    // single-shard run bit for bit.
    let serial = rack_fingerprint(8, 1, 7);
    for threads in [1usize, 2, 8] {
        assert_eq!(
            serial,
            rack_fingerprint_threaded(8, 8, threads, 7),
            "{threads} worker threads changed an 8-shard result bit"
        );
    }
}

#[test]
fn table1_quadrant_is_thread_invariant() {
    // The Table-1 quadrant (destination OCC over a clean store), run with
    // the paper pair fully sharded and thread-driven: every thread count
    // must reproduce the plain serial scenario bit for bit.
    let serial = table1_dest_occ_scenario(5);
    assert!(serial.0 > 0, "serial run must complete ops");
    for threads in [1usize, 2] {
        let (scenario, _store) =
            ScenarioBuilder::new().store(1, StoreLayout::Clean, 1024, Some(512));
        let wire = StoreLayout::Clean.object_bytes(1024) as u32;
        let report = scenario
            .shards(2)
            .threads(threads)
            .reader_spec(
                0,
                0,
                spec()
                    .store(1)
                    .payload(1024)
                    .mechanism(ReadMechanism::Sabre)
                    .wire(wire),
            )
            .run_for(Time::from_us(20 * 5));
        let m = report.core(0, 0);
        assert_eq!(
            serial,
            (m.ops, m.latency.mean()),
            "2 shards on {threads} threads diverged from the serial quadrant"
        );
    }
}

#[test]
fn eight_node_fig_scale_point_is_thread_invariant() {
    // The shipped fig_scale construction (not a copy of it), 8 nodes and
    // 8 shards, across worker-thread counts {1, 2, shards}.
    let serial = sabre_bench::experiments::fig_scale::measure_sharded(
        8,
        sabre_bench::experiments::fig_scale::Mechanism::Sabre,
        3,
        1,
    );
    for threads in [1usize, 2, 8] {
        let threaded = sabre_bench::experiments::fig_scale::measure_threaded(
            8,
            sabre_bench::experiments::fig_scale::Mechanism::Sabre,
            3,
            8,
            Some(threads),
        );
        assert_eq!(serial.latency_ns, threaded.latency_ns, "{threads} threads");
        assert_eq!(serial.total_gbps, threaded.total_gbps, "{threads} threads");
        assert_eq!(
            serial.min_reader_gbps, threaded.min_reader_gbps,
            "{threads} threads"
        );
        assert_eq!(
            serial.max_reader_gbps, threaded.max_reader_gbps,
            "{threads} threads"
        );
    }
}

#[test]
fn fig_placement_point_is_shard_and_thread_invariant() {
    // The shipped fig_placement construction (not a copy of it) on its
    // geometry-heaviest point — the 4:1 fat tree with a 1:3 skew under
    // round-robin placement, where uplink queueing is busiest — replayed
    // at every shards × threads setting.
    use sabre_bench::experiments::fig_placement::{measure_threaded, FabricKind, Placement};
    let fingerprint = |p: sabre_bench::experiments::fig_placement::Point| {
        (p.latency_ns, p.total_gbps, p.reader_hops)
    };
    for (fabric, placement) in [
        (FabricKind::FatTree4, Placement::RoundRobin),
        (FabricKind::Mesh, Placement::Nearest),
    ] {
        let serial = fingerprint(measure_threaded(fabric, placement, (2, 3), 3, 1, Some(1)));
        assert!(serial.1 > 0.0, "{fabric:?}/{placement:?}: no goodput");
        for shards in [2usize, 8] {
            for threads in [1usize, 2, 8] {
                let threaded = fingerprint(measure_threaded(
                    fabric,
                    placement,
                    (2, 3),
                    3,
                    shards,
                    Some(threads),
                ));
                assert_eq!(
                    serial, threaded,
                    "{fabric:?}/{placement:?}: {shards} shards on {threads} threads \
                     diverged from the serial run"
                );
            }
        }
    }
}

#[test]
fn fig_tail_point_is_shard_and_thread_invariant() {
    // The shipped fig_tail construction (not a copy of it) on an
    // open-loop point with queueing and skew in play — the tentpole
    // acceptance bar: every percentile, queue counter and op count must
    // replay bit for bit at every shards x threads setting.
    use sabre_bench::experiments::fig_scale::Mechanism;
    use sabre_bench::experiments::fig_tail::{measure_threaded, Skew};
    let fingerprint = |p: sabre_bench::experiments::fig_tail::Point| {
        (
            p.ops,
            p.p50_ns,
            p.p99_ns,
            p.p999_ns,
            p.queued,
            p.peak_backlog,
        )
    };
    let serial = fingerprint(measure_threaded(
        Mechanism::Sabre,
        Skew::Zipf,
        0.8,
        2,
        1,
        Some(1),
    ));
    assert!(serial.0 > 0, "serial run must complete ops");
    assert!(serial.4 > 0, "an 0.8 ops/us point must see queueing");
    for shards in [2usize, 8] {
        for threads in [1usize, 2, 8] {
            let threaded = fingerprint(measure_threaded(
                Mechanism::Sabre,
                Skew::Zipf,
                0.8,
                2,
                shards,
                Some(threads),
            ));
            assert_eq!(
                serial, threaded,
                "{shards} shards on {threads} threads diverged from the serial run"
            );
        }
    }
}

#[test]
fn open_loop_bucket_counts_are_shard_and_thread_invariant() {
    // Stronger than percentile equality: the merged latency histogram's
    // full bucket dump — every count in every bucket — must be
    // byte-identical at every shards x threads setting.
    let dump = |shards: usize, threads: usize| {
        let builder = ScenarioBuilder::new()
            .nodes(8)
            .shards(shards)
            .threads(threads);
        let topo = builder.config().topology.clone();
        let (mut scenario, store_shards) =
            builder.sharded_store(topo.store_nodes(), StoreLayout::Clean, 1024, 32);
        for (i, &rnode) in topo.reader_nodes().iter().enumerate() {
            let shard = store_shards[i % store_shards.len()].clone();
            let wire = shard.slot_bytes() as u32;
            scenario = scenario.reader_spec(
                rnode,
                0,
                spec()
                    .store(shard.node() as usize)
                    .payload(1024)
                    .mechanism(ReadMechanism::Sabre)
                    .wire(wire)
                    .objects(shard.object_addrs())
                    .arrivals(Arrivals::Poisson { ops_per_us: 1.2 })
                    .popularity(Popularity::Zipf { exponent: 0.99 }),
            );
        }
        let report = scenario.run_for(Time::from_us(40));
        assert!(report.rack_metrics().ops > 0, "no ops recorded");
        report.latency_dump()
    };
    let serial = dump(1, 1);
    for shards in [2usize, 8] {
        for threads in [1usize, 2, 8] {
            assert_eq!(
                serial,
                dump(shards, threads),
                "{shards} shards on {threads} threads changed a bucket count"
            );
        }
    }
}

#[test]
fn eight_node_table1_workload_reports_per_node_metrics() {
    // The Table-1 workload (1 KB clean-store SABRes), distributed over the
    // 8-node rack through the Scenario API, with the shipped fig_scale
    // construction — and the shipped experiment is itself shard-invariant.
    let sharded = sabre_bench::experiments::fig_scale::measure_sharded(
        8,
        sabre_bench::experiments::fig_scale::Mechanism::Sabre,
        3,
        8,
    );
    let unsharded = sabre_bench::experiments::fig_scale::measure_sharded(
        8,
        sabre_bench::experiments::fig_scale::Mechanism::Sabre,
        3,
        1,
    );
    assert_eq!(sharded.latency_ns, unsharded.latency_ns);
    assert_eq!(sharded.total_gbps, unsharded.total_gbps);
    assert!(sharded.total_gbps > 0.0);
    assert!(sharded.min_reader_gbps > 0.0, "every reader node reports");
}

#[test]
fn node_count_sweep_is_parallel_invariant() {
    let point = |&nodes: &usize| rack_fingerprint(nodes, nodes, 3);
    let counts = [2usize, 4, 6, 8];
    let serial = Sweep::over(counts).threads(1).map(point);
    let parallel = Sweep::over(counts).threads(4).map(point);
    assert_eq!(
        serial, parallel,
        "a sweep over rack sizes must not depend on worker threads"
    );
}

#[test]
fn fig_protocols_point_is_shard_and_thread_invariant() {
    // The shipped fig_protocols construction (not a copy of it) on its
    // busiest point — the wait-free register under Zipf skew with racing
    // writers on every shard, so server-side captures, writer invalidation
    // restarts and open-loop queueing are all in play — must replay bit
    // for bit at every shards x threads setting.
    use sabre_bench::experiments::fig_protocols::{measure_threaded, Protocol};
    use sabre_bench::experiments::fig_tail::Skew;
    let fingerprint = |p: sabre_bench::experiments::fig_protocols::Point| {
        (
            p.ops,
            p.p50_ns,
            p.p99_ns,
            p.hops_per_op.to_bits(),
            p.retries,
        )
    };
    let serial = fingerprint(measure_threaded(
        Protocol::WfRegister,
        Skew::Zipf,
        0.8,
        2,
        1,
        Some(1),
    ));
    assert!(serial.0 > 0, "serial run must complete ops");
    for shards in [2usize, 8] {
        for threads in [1usize, 2, 8] {
            let threaded = fingerprint(measure_threaded(
                Protocol::WfRegister,
                Skew::Zipf,
                0.8,
                2,
                shards,
                Some(threads),
            ));
            assert_eq!(
                serial, threaded,
                "{shards} shards on {threads} threads diverged from the serial run"
            );
        }
    }
    // And the Oh-RAM path (confirm writes in flight at merge time) too.
    let serial = fingerprint(measure_threaded(
        Protocol::OhRam,
        Skew::Zipf,
        0.8,
        2,
        1,
        Some(1),
    ));
    assert!(serial.0 > 0, "serial Oh-RAM run must complete ops");
    for (shards, threads) in [(2usize, 2usize), (8, 8)] {
        let threaded = fingerprint(measure_threaded(
            Protocol::OhRam,
            Skew::Zipf,
            0.8,
            2,
            shards,
            Some(threads),
        ));
        assert_eq!(
            serial, threaded,
            "Oh-RAM: {shards} shards on {threads} threads diverged from the serial run"
        );
    }
}
