//! Latency anatomy of one atomic remote object read, across object sizes
//! and mechanisms — a miniature of the paper's Figs. 7a/9a for interactive
//! exploration.
//!
//! ```text
//! cargo run --release --example latency_sweep
//! ```

use sabres::prelude::*;

fn one_reader(size: u32, mech: ReadMechanism, spec: SpecMode) -> f64 {
    let mut cfg = ClusterConfig::default();
    cfg.lightsabres.spec_mode = spec;
    let mut cluster = Cluster::new(cfg);

    // Memory-resident targets: enough objects that the LLC misses dominate.
    let slot = (size as u64).div_ceil(64) * 64;
    let n = (16 * 1024 * 1024 / slot).min(8192);
    let mem = cluster.node_memory_mut(1);
    let mut objects = Vec::new();
    for i in 0..n {
        mem.write_u64(Addr::new(i * slot), 0);
        objects.push(Addr::new(i * slot));
    }

    cluster.add_workload(0, 0, Box::new(SyncReader::endless(1, objects, size, mech)));
    cluster.run_for(Time::from_us(400));
    cluster.metrics(0, 0).latency.mean().expect("ops completed")
}

fn main() {
    println!("mean end-to-end latency of one synchronous remote operation (ns)\n");
    println!(
        "{:>8}  {:>12} {:>12} {:>12} {:>14}",
        "size(B)", "remote read", "SABRe", "SABRe nospec", "perCL(sw OCC)"
    );
    for size in [64u32, 256, 1024, 4096, 8192] {
        let read = one_reader(size, ReadMechanism::Raw, SpecMode::Speculative);
        let sabre = one_reader(size, ReadMechanism::Sabre, SpecMode::Speculative);
        let nospec = one_reader(size, ReadMechanism::Sabre, SpecMode::ReadVersionFirst);
        let percl = one_reader(
            size,
            ReadMechanism::PerClValidate { payload: size },
            SpecMode::Speculative,
        );
        println!("{size:>8}  {read:>12.0} {sabre:>12.0} {nospec:>12.0} {percl:>14.0}");
    }
    println!(
        "\nSABRes track plain reads; the no-speculation strawman pays the\n\
         serialized version read; software OCC pays the CPU check, growing\n\
         linearly with size."
    );
}
