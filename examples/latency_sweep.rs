//! Latency anatomy of one atomic remote object read, across object sizes
//! and mechanisms — a miniature of the paper's Figs. 7a/9a for interactive
//! exploration. The sweep points are independent scenarios, so they run in
//! parallel across OS threads (cap with `SABRES_THREADS`).
//!
//! ```text
//! cargo run --release --example latency_sweep
//! ```

use sabres::prelude::*;

fn one_reader(size: u32, mech: ReadMechanism, mode: SpecMode) -> f64 {
    // Memory-resident targets: enough objects that LLC misses dominate
    // (this example has always capped the count at 8192, below
    // `raw_region`'s default clamp, so its printed numbers stay stable
    // across the Scenario-API migration).
    let slot = (size as u64).div_ceil(64) * 64;
    let count = (16 * 1024 * 1024 / slot).min(8192);
    ScenarioBuilder::new()
        .configure(|cfg| cfg.lightsabres.spec_mode = mode)
        .raw_region_sized(1, size, count)
        .reader_spec(0, 0, spec().store(1).payload(size).mechanism(mech))
        .run_for(Time::from_us(400))
        .mean_latency_ns(0, 0)
        .expect("ops completed")
}

fn main() {
    println!("mean end-to-end latency of one synchronous remote operation (ns)\n");
    println!(
        "{:>8}  {:>12} {:>12} {:>12} {:>14}",
        "size(B)", "remote read", "SABRe", "SABRe nospec", "perCL(sw OCC)"
    );
    let rows = Sweep::over([64u32, 256, 1024, 4096, 8192]).map(|&size| {
        let read = one_reader(size, ReadMechanism::Raw, SpecMode::Speculative);
        let sabre = one_reader(size, ReadMechanism::Sabre, SpecMode::Speculative);
        let nospec = one_reader(size, ReadMechanism::Sabre, SpecMode::ReadVersionFirst);
        let percl = one_reader(
            size,
            ReadMechanism::PerClValidate { payload: size },
            SpecMode::Speculative,
        );
        (size, read, sabre, nospec, percl)
    });
    for (size, read, sabre, nospec, percl) in rows {
        println!("{size:>8}  {read:>12.0} {sabre:>12.0} {nospec:>12.0} {percl:>14.0}");
    }
    println!(
        "\nSABRes track plain reads; the no-speculation strawman pays the\n\
         serialized version read; software OCC pays the CPU check, growing\n\
         linearly with size."
    );
}
