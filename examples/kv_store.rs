//! A FaRM-like key-value store serving remote lookups — the paper's §7.3
//! scenario — with writes arriving over RPC at the data owner.
//!
//! Compares the two deployments side by side:
//! * baseline: per-cache-line-versions store, lookups validate + strip on
//!   the CPU after every transfer;
//! * SABRe: clean store, lookups are hardware-atomic and zero-copy.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use sabres::prelude::*;

fn deploy(layout: StoreLayout) -> (f64, f64, u64) {
    // Node 1 owns a 4 KB-object store; node 0 runs the client threads.
    let (scenario, store) = ScenarioBuilder::new().store(1, layout, 4096, Some(2048));

    let reader_store = store.clone();
    let server_store = store.clone();
    let report = scenario
        // 8 reader threads doing random key lookups over one-sided
        // operations.
        .readers(0, 0..8, move |_, _| {
            let kv = KvStore::new(reader_store.clone(), 1_000_000);
            Box::new(FarmReader::endless(kv, FarmCosts::default()))
        })
        // One client thread sends write RPCs; core 15 of node 1 applies
        // them at the owner (FaRM never writes remote memory one-sidedly).
        .reader(1, 15, move |_| {
            Box::new(RpcWriteServer::new(KvStore::new(server_store, 1_000_000)))
        })
        .reader(0, 15, move |_| {
            let kv = KvStore::new(store, 1_000_000);
            Box::new(RpcWriter::endless(kv, 15, Time::from_us(2)))
        })
        .run_for(Time::from_us(500));

    let readers = report.node(0);
    (
        readers.gbps(report.sim_time()),
        readers.abort_rate(),
        report.core(0, 15).ops, // RPC writes acknowledged
    )
}

fn main() {
    println!("deploying the same KV workload on both store layouts…\n");
    let results = Sweep::over([StoreLayout::PerCl, StoreLayout::Clean]).map(|&l| deploy(l));
    let (base_gbps, base_aborts, base_writes) = results[0];
    let (sabre_gbps, sabre_aborts, sabre_writes) = results[1];

    println!("baseline (per-CL versions): {base_gbps:.2} GB/s lookups, {:.2}% retried, {base_writes} writes applied", base_aborts * 100.0);
    println!("SABRe    (clean layout)   : {sabre_gbps:.2} GB/s lookups, {:.2}% retried, {sabre_writes} writes applied", sabre_aborts * 100.0);
    println!(
        "\nLightSABRes improvement: {:+.0}%",
        (sabre_gbps / base_gbps - 1.0) * 100.0
    );
    assert!(sabre_gbps > base_gbps, "SABRes should win on this workload");
}
