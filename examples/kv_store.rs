//! A FaRM-like key-value store serving remote lookups — the paper's §7.3
//! scenario — with writes arriving over RPC at the data owner.
//!
//! Compares the two deployments side by side:
//! * baseline: per-cache-line-versions store, lookups validate + strip on
//!   the CPU after every transfer;
//! * SABRe: clean store, lookups are hardware-atomic and zero-copy.
//!
//! ```text
//! cargo run --release --example kv_store
//! ```

use sabres::prelude::*;

fn deploy(layout: StoreLayout) -> (f64, f64, u64) {
    let mut cluster = Cluster::new(ClusterConfig::default());

    // Node 1 owns a 4 KB-object store; node 0 runs the client threads.
    let store = ObjectStore::new(1, Addr::new(0), layout, 4096, 2048);
    store.init(cluster.node_memory_mut(1));

    // 8 reader threads doing random key lookups over one-sided operations.
    for core in 0..8 {
        let kv = KvStore::new(store.clone(), 1_000_000);
        cluster.add_workload(
            0,
            core,
            Box::new(FarmReader::endless(kv, FarmCosts::default())),
        );
    }

    // One client thread sends write RPCs; core 15 of node 1 applies them
    // at the owner (FaRM never writes remote memory one-sidedly).
    let kv = KvStore::new(store.clone(), 1_000_000);
    cluster.add_workload(1, 15, Box::new(RpcWriteServer::new(kv)));
    let kv = KvStore::new(store, 1_000_000);
    cluster.add_workload(
        0,
        15,
        Box::new(RpcWriter::endless(kv, 15, Time::from_us(2))),
    );

    cluster.run_for(Time::from_us(500));
    let readers = cluster.node_metrics(0);
    let horizon = cluster.now();
    (
        readers.gbps(horizon),
        readers.abort_rate(),
        cluster.metrics(0, 15).ops, // RPC writes acknowledged
    )
}

fn main() {
    println!("deploying the same KV workload on both store layouts…\n");
    let (base_gbps, base_aborts, base_writes) = deploy(StoreLayout::PerCl);
    let (sabre_gbps, sabre_aborts, sabre_writes) = deploy(StoreLayout::Clean);

    println!("baseline (per-CL versions): {base_gbps:.2} GB/s lookups, {:.2}% retried, {base_writes} writes applied", base_aborts * 100.0);
    println!("SABRe    (clean layout)   : {sabre_gbps:.2} GB/s lookups, {:.2}% retried, {sabre_writes} writes applied", sabre_aborts * 100.0);
    println!(
        "\nLightSABRes improvement: {:+.0}%",
        (sabre_gbps / base_gbps - 1.0) * 100.0
    );
    assert!(sabre_gbps > base_gbps, "SABRes should win on this workload");
}
