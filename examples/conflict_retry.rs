//! Conflict handling policies under write pressure.
//!
//! §5.1: the hardware never retries a failed SABRe — atomicity failures are
//! exposed through the Completion Queue and *software* picks the policy.
//! This example pits three policies against a hot, write-heavy object set:
//! immediate retry, exponential-style fixed backoff, and a long backoff.
//!
//! ```text
//! cargo run --release --example conflict_retry
//! ```

use sabres::prelude::*;

fn run_policy(label: &str, backoff: Time) {
    let mut cluster = Cluster::new(ClusterConfig::default());

    // A small, hot store: 32 × 2 KB objects, all LLC-resident, with four
    // aggressive writers (CREW) — a conflict-heavy regime.
    let store = ObjectStore::new(1, Addr::new(0), StoreLayout::Clean, 2048, 32);
    store.init(cluster.node_memory_mut(1));
    cluster.warm_llc(1, store.object_addr(0), store.region_bytes());
    let wire = StoreLayout::Clean.object_bytes(2048) as u32;

    for core in 0..8 {
        cluster.add_workload(
            0,
            core,
            Box::new(
                SyncReader::endless(1, store.object_addrs(), 2048, ReadMechanism::Sabre)
                    .with_wire(wire)
                    .with_consume()
                    .with_backoff(backoff),
            ),
        );
    }
    let entries = store.object_entries();
    for (w, chunk) in entries.chunks(8).enumerate() {
        cluster.add_workload(
            1,
            w,
            Box::new(Writer::new(
                chunk.to_vec(),
                2048,
                WriterLayout::Clean,
                Time::ZERO,
            )),
        );
    }

    cluster.run_for(Time::from_us(300));
    let m = cluster.node_metrics(0);
    println!(
        "{label:<18} {:>7.2} GB/s   abort rate {:>5.1}%   {} reads / {} retries",
        m.gbps(cluster.now()),
        m.abort_rate() * 100.0,
        m.ops,
        m.retries
    );
}

fn main() {
    println!("8 readers vs 4 continuous writers on 32 hot objects:\n");
    run_policy("immediate retry", Time::ZERO);
    run_policy("backoff 500 ns", Time::from_ns(500));
    run_policy("backoff 2 us", Time::from_us(2));
    println!(
        "\nImmediate retry keeps goodput highest here (aborted SABRes waste\n\
         fabric bandwidth but the reader loses no time); longer backoffs cut\n\
         the abort rate instead — the trade §5.1 leaves to the application."
    );
}
