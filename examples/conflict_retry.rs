//! Conflict handling policies under write pressure.
//!
//! §5.1: the hardware never retries a failed SABRe — atomicity failures are
//! exposed through the Completion Queue and *software* picks the policy.
//! This example pits three policies against a hot, write-heavy object set:
//! immediate retry, exponential-style fixed backoff, and a long backoff.
//!
//! ```text
//! cargo run --release --example conflict_retry
//! ```

use sabres::prelude::*;

fn run_policy(backoff: Time) -> (f64, f64, u64, u64) {
    // A small, hot store: 32 × 2 KB objects, all LLC-resident, with four
    // aggressive writers (CREW) — a conflict-heavy regime.
    let (scenario, store) =
        ScenarioBuilder::new().warmed_store(1, StoreLayout::Clean, 2048, Some(32));
    let wire = StoreLayout::Clean.object_bytes(2048) as u32;

    let mut scenario = scenario.readers_spec(
        0,
        0..8,
        spec()
            .store(1)
            .payload(2048)
            .mechanism(ReadMechanism::Sabre)
            .wire(wire)
            .consume()
            .backoff(backoff),
    );
    for (w, chunk) in store.object_entries().chunks(8).enumerate() {
        scenario = scenario.workload(
            1,
            w,
            Box::new(Writer::new(
                chunk.to_vec(),
                2048,
                WriterLayout::Clean,
                Time::ZERO,
            )),
        );
    }

    let report = scenario.run_for(Time::from_us(300));
    let m = report.node(0);
    (report.gbps(0), m.abort_rate(), m.ops, m.retries)
}

fn main() {
    println!("8 readers vs 4 continuous writers on 32 hot objects:\n");
    let policies = [
        ("immediate retry", Time::ZERO),
        ("backoff 500 ns", Time::from_ns(500)),
        ("backoff 2 us", Time::from_us(2)),
    ];
    // Independent scenarios: sweep them in parallel, results in order.
    let results = Sweep::over(policies).map(|&(_, backoff)| run_policy(backoff));
    for ((label, _), (gbps, abort_rate, ops, retries)) in policies.iter().zip(results) {
        println!(
            "{label:<18} {gbps:>7.2} GB/s   abort rate {:>5.1}%   {ops} reads / {retries} retries",
            abort_rate * 100.0,
        );
    }
    println!(
        "\nImmediate retry keeps goodput highest here (aborted SABRes waste\n\
         fabric bandwidth but the reader loses no time); longer backoffs cut\n\
         the abort rate instead — the trade §5.1 leaves to the application."
    );
}
