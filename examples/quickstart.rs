//! Quickstart: perform atomic remote object reads (SABRes) on a simulated
//! two-node soNUMA rack and watch a racing writer get detected.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sabres::prelude::*;

fn main() {
    // Build the paper's Table-2 system: two 16-core chips, four R2P2s each
    // (every R2P2 carrying a LightSABRes engine), 100 GBps fabric.
    let mut cluster = Cluster::new(ClusterConfig::default());

    // Node 1 hosts a store of 1 KB objects in the clean layout (16 B header
    // with the odd/even version word, then contiguous payload).
    let store = ObjectStore::new(1, Addr::new(0), StoreLayout::Clean, 1024, 256);
    store.init(cluster.node_memory_mut(1));
    let wire = StoreLayout::Clean.object_bytes(1024) as u32;

    // Four cores on node 0 read random objects atomically, in a tight loop.
    for core in 0..4 {
        cluster.add_workload(
            0,
            core,
            Box::new(
                SyncReader::endless(1, store.object_addrs(), 1024, ReadMechanism::Sabre)
                    .with_wire(wire),
            ),
        );
    }

    // One writer thread on node 1 keeps updating a few of the objects, so
    // some SABRes will observe conflicts and abort (and retry).
    cluster.add_workload(
        1,
        0,
        Box::new(Writer::new(
            store.object_entries().into_iter().take(8).collect(),
            1024,
            WriterLayout::Clean,
            Time::from_ns(500),
        )),
    );

    // Run one millisecond of simulated time.
    cluster.run_for(Time::from_us(1000));

    println!("simulated time: {}", cluster.now());
    let mut total_ok = 0;
    for core in 0..4 {
        let m = cluster.metrics(0, core);
        println!(
            "reader {core}: {} atomic reads, {} retries, mean latency {:.0} ns",
            m.ops,
            m.retries,
            m.latency.mean().unwrap_or(0.0)
        );
        total_ok += m.ops;
    }
    let agg = cluster.node_metrics(0);
    println!(
        "aggregate: {} reads, {:.2} GB/s of clean payload",
        total_ok,
        agg.gbps(cluster.now())
    );

    // Engine-level visibility: how the destination's LightSABRes engines saw it.
    let mut ok = 0;
    let mut failed = 0;
    for pipe in 0..4 {
        let e = cluster.engine_stats(1, pipe);
        ok += e.completed_ok;
        failed += e.completed_failed;
    }
    println!("destination engines: {ok} atomic, {failed} aborted (exposed to software)");
    assert!(total_ok > 0, "expected successful SABRes");
}
