//! Quickstart: perform atomic remote object reads (SABRes) on a simulated
//! two-node soNUMA rack and watch a racing writer get detected.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use sabres::prelude::*;

fn main() {
    // Build the paper's Table-2 system: two 16-core chips, four R2P2s each
    // (every R2P2 carrying a LightSABRes engine), 100 GBps fabric. Node 1
    // hosts a store of 1 KB objects in the clean layout (16 B header with
    // the odd/even version word, then contiguous payload).
    let (scenario, store) = ScenarioBuilder::new().store(1, StoreLayout::Clean, 1024, Some(256));
    let wire = StoreLayout::Clean.object_bytes(1024) as u32;

    let report = scenario
        // Four cores on node 0 read random objects atomically, in a tight
        // loop.
        .readers_spec(
            0,
            0..4,
            spec()
                .store(1)
                .payload(1024)
                .mechanism(ReadMechanism::Sabre)
                .wire(wire),
        )
        // One writer thread on node 1 keeps updating a few of the objects,
        // so some SABRes will observe conflicts and abort (and retry).
        .workload(
            1,
            0,
            Box::new(Writer::new(
                store.object_entries().into_iter().take(8).collect(),
                1024,
                WriterLayout::Clean,
                Time::from_ns(500),
            )),
        )
        // Run one millisecond of simulated time.
        .run_for(Time::from_us(1000));

    println!("simulated time: {}", report.sim_time());
    let mut total_ok = 0;
    for core in 0..4 {
        let m = report.core(0, core);
        println!(
            "reader {core}: {} atomic reads, {} retries, mean latency {:.0} ns",
            m.ops,
            m.retries,
            m.latency.mean().unwrap_or(0.0)
        );
        total_ok += m.ops;
    }
    println!(
        "aggregate: {} reads, {:.2} GB/s of clean payload",
        total_ok,
        report.gbps(0)
    );

    // Engine-level visibility: how the destination's LightSABRes engines saw it.
    let engines = report.engine_totals(1);
    println!(
        "destination engines: {} atomic, {} aborted (exposed to software)",
        engines.completed_ok, engines.completed_failed
    );
    assert!(total_ok > 0, "expected successful SABRes");
}
